//! The chase procedure for functional and inclusion dependencies.
//!
//! The chase is used (a) to decide implication of dependencies on concrete,
//! terminating inputs — the ground truth against which the paper's
//! undecidability gadgets (Theorems 3.1, 5.2, 5.3) are tested — and (b) to
//! repair instances against inclusion dependencies when generating
//! constraint-satisfying workloads for the benchmarks.
//!
//! Because the implication problem for FDs + inclusion dependencies is
//! undecidable, the chase here is *bounded*: it runs for at most a configured
//! number of steps and reports honestly when the budget is exhausted.
//!
//! # Incremental violation discovery
//!
//! Two implementations share one repair skeleton (passes over the constraint
//! list, at most one repair per constraint per pass, the same budget and the
//! same fresh-null counter), so they produce identical outcomes:
//!
//! * the **scan** chase re-runs [`FunctionalDependency::find_violation`] /
//!   [`InclusionDependency::find_violation`] from scratch every pass and
//!   applies FD merges with [`Instance::map_values`], rebuilding the whole
//!   instance (and dropping its per-position index) on every repair;
//! * the **incremental** chase (the default) keeps a *dirty set* per
//!   constraint — only facts touched since that constraint was last verified
//!   are re-examined — probes candidate FD groups and IND witnesses through
//!   the per-position posting lists ([`crate::index`]), and applies FD merges
//!   by removing and re-adding exactly the facts that mention the merged
//!   value, which keeps the index alive across repair steps
//!   ([`Instance::remove_fact`] maintains it).
//!
//! Violation *choice* is pinned down to the scan's first-in-tuple-order
//! semantics in both modes, so the repair sequences — and therefore outcomes,
//! instances and fresh-null names — are byte-identical.  Set
//! `ACCLTL_DISABLE_INCREMENTAL_CHASE=1` (see
//! [`DISABLE_INCREMENTAL_CHASE_ENV_VAR`]) to fall back to the scan chase;
//! the equivalence is property-tested in `tests/chase_props.rs` and
//! CI-enforced by diffing the `chase_repair` example both ways.

use std::collections::{BTreeMap, BTreeSet};

use accltl_obs::{json::JsonObject, metrics, trace};

use crate::constraints::{Constraint, FunctionalDependency, InclusionDependency};
use crate::instance::Instance;
use crate::overlay::InstanceView;
use crate::symbols::RelId;
use crate::tuple::Tuple;
use crate::value::Value;

/// Environment variable disabling the incremental chase when set to `1`:
/// [`ChaseConfig::from_env`] (and therefore `ChaseConfig::default()`) falls
/// back to the scan-based implementation, which produces byte-identical
/// outcomes (CI diffs the `chase_repair` example both ways).
///
/// The variable is *read* in exactly one place, [`ChaseConfig::from_env`];
/// this module only defines the name.
pub const DISABLE_INCREMENTAL_CHASE_ENV_VAR: &str = "ACCLTL_DISABLE_INCREMENTAL_CHASE";

/// Configuration for the bounded chase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseConfig {
    /// Maximum number of chase steps (tuple additions or equations) applied
    /// before giving up.
    pub max_steps: usize,
    /// Whether violation discovery runs incrementally over dirty-tuple
    /// worklists and per-position indexes (the default), or by whole-relation
    /// scans every pass.  Outcomes are identical either way; this is purely a
    /// performance switch.
    pub incremental: bool,
}

impl ChaseConfig {
    /// The environment-independent baseline configuration.
    #[must_use]
    pub fn base() -> Self {
        ChaseConfig {
            max_steps: 10_000,
            incremental: true,
        }
    }

    /// The baseline with [`DISABLE_INCREMENTAL_CHASE_ENV_VAR`] applied — the
    /// single place that variable is read.
    #[must_use]
    pub fn from_env() -> Self {
        let disabled = std::env::var(DISABLE_INCREMENTAL_CHASE_ENV_VAR)
            .map(|v| v == "1")
            .unwrap_or(false);
        ChaseConfig {
            incremental: !disabled,
            ..ChaseConfig::base()
        }
    }
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig::from_env()
    }
}

/// Work counters for one chase run, in the mould of the engine's
/// `EngineCacheStats`: pure observability, never consulted by the procedure
/// itself.
///
/// The repair counters (`passes`, `violation_checks`, `fd_merges`,
/// `ind_additions`) are identical between the scan and incremental modes,
/// because the repair sequences are.  The work counters (`tuples_rescanned`,
/// `facts_rewritten`, `index_rebuilds_avoided`) measure what the *active*
/// implementation did — comparing them across modes is the point: the
/// incremental chase exists to shrink `tuples_rescanned` and to turn
/// whole-instance rebuilds into `index_rebuilds_avoided`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Passes over the constraint list.
    pub passes: usize,
    /// Constraint checks performed (one per constraint per pass).
    pub violation_checks: usize,
    /// Tuples examined while looking for violations.  The scan chase counts
    /// the relation sizes it walks; the incremental chase counts the dirty
    /// candidates and group/witness probes it actually touched.
    pub tuples_rescanned: usize,
    /// FD repairs applied (value merges).
    pub fd_merges: usize,
    /// IND repairs applied (fresh target tuples).
    pub ind_additions: usize,
    /// Facts rewritten by FD merges (incremental mode only: the scan chase
    /// rebuilds every fact wholesale via `map_values` instead).
    pub facts_rewritten: usize,
    /// FD merges that kept a live per-position index maintained instead of
    /// invalidating it (incremental mode only).
    pub index_rebuilds_avoided: usize,
}

impl ChaseStats {
    /// Total repairs applied (FD merges plus IND additions).
    #[must_use]
    pub fn repairs(&self) -> usize {
        self.fd_merges + self.ind_additions
    }

    /// Renders the counters as a single-line JSON object (the
    /// machine-readable half of the run-report surface; key order is
    /// stable).
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .num("passes", self.passes as u64)
            .num("violation_checks", self.violation_checks as u64)
            .num("tuples_rescanned", self.tuples_rescanned as u64)
            .num("fd_merges", self.fd_merges as u64)
            .num("ind_additions", self.ind_additions as u64)
            .num("facts_rewritten", self.facts_rewritten as u64)
            .num("index_rebuilds_avoided", self.index_rebuilds_avoided as u64)
            .build()
    }
}

/// The result of running the bounded chase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// The chase terminated; the returned instance satisfies every FD and
    /// inclusion dependency in the input (disjointness constraints are not
    /// repaired — see [`ChaseOutcome::Failed`]).
    Completed(Instance),
    /// The chase failed: an FD required equating two distinct non-null
    /// constants, or a disjointness constraint was violated (denial
    /// constraints cannot be repaired).
    Failed {
        /// The constraint that caused the failure.
        violated: Constraint,
    },
    /// The step budget ran out before reaching a fixpoint (the instance built
    /// so far is returned for inspection).
    BudgetExhausted(Instance),
}

impl ChaseOutcome {
    /// The instance produced, if the chase terminated successfully.
    #[must_use]
    pub fn completed(self) -> Option<Instance> {
        match self {
            ChaseOutcome::Completed(inst) => Some(inst),
            _ => None,
        }
    }
}

/// Runs the bounded chase of `instance` with `constraints`.
#[must_use]
pub fn chase(
    instance: &Instance,
    constraints: &[Constraint],
    config: &ChaseConfig,
) -> ChaseOutcome {
    chase_with_stats(instance, constraints, config).0
}

/// Runs the bounded chase and reports its work counters.
#[must_use]
pub fn chase_with_stats(
    instance: &Instance,
    constraints: &[Constraint],
    config: &ChaseConfig,
) -> (ChaseOutcome, ChaseStats) {
    let _run_span = trace::span_fields(
        "chase.run",
        &[
            ("constraints", constraints.len() as u64),
            ("incremental", u64::from(config.incremental)),
        ],
    );
    let mut stats = ChaseStats::default();
    let outcome = if config.incremental {
        chase_incremental(instance, constraints, config, &mut stats)
    } else {
        chase_scan(instance, constraints, config, &mut stats)
    };
    metrics::add("chase.runs", 1);
    metrics::add("chase.passes", stats.passes as u64);
    metrics::add("chase.violation_checks", stats.violation_checks as u64);
    metrics::add("chase.tuples_rescanned", stats.tuples_rescanned as u64);
    metrics::add("chase.fd_merges", stats.fd_merges as u64);
    metrics::add("chase.ind_additions", stats.ind_additions as u64);
    metrics::add("chase.facts_rewritten", stats.facts_rewritten as u64);
    metrics::add(
        "chase.index_rebuilds_avoided",
        stats.index_rebuilds_avoided as u64,
    );
    trace::event(
        "chase.report",
        &[
            ("passes", stats.passes as u64),
            ("violation_checks", stats.violation_checks as u64),
            ("tuples_rescanned", stats.tuples_rescanned as u64),
            ("fd_merges", stats.fd_merges as u64),
            ("ind_additions", stats.ind_additions as u64),
            ("facts_rewritten", stats.facts_rewritten as u64),
            (
                "index_rebuilds_avoided",
                stats.index_rebuilds_avoided as u64,
            ),
        ],
    );
    (outcome, stats)
}

/// The scan-based chase: every pass re-finds violations from scratch and FD
/// merges rebuild the whole instance.  Kept verbatim as the differential
/// baseline for the incremental implementation.
fn chase_scan(
    instance: &Instance,
    constraints: &[Constraint],
    config: &ChaseConfig,
    stats: &mut ChaseStats,
) -> ChaseOutcome {
    let mut current = instance.clone();
    let mut null_counter = next_null_id(&current);
    let mut steps = 0usize;

    loop {
        if steps > config.max_steps {
            return ChaseOutcome::BudgetExhausted(current);
        }
        stats.passes += 1;
        let _pass_span = trace::span_fields("chase.pass", &[("pass", stats.passes as u64)]);
        let mut changed = false;

        for constraint in constraints {
            stats.violation_checks += 1;
            match constraint {
                Constraint::Fd(fd) => {
                    stats.tuples_rescanned += current.relation_size(fd.relation);
                    if let Some((t1, t2)) = fd.find_violation(&current) {
                        let v1 = t1.get(fd.rhs).copied().expect("validated position");
                        let v2 = t2.get(fd.rhs).copied().expect("validated position");
                        match equate(v1, v2) {
                            Some((from, to)) => {
                                current = current.map_values(|v| if *v == from { to } else { *v });
                                stats.fd_merges += 1;
                                changed = true;
                                steps += 1;
                            }
                            None => {
                                return ChaseOutcome::Failed {
                                    violated: constraint.clone(),
                                };
                            }
                        }
                    }
                }
                Constraint::Ind(ind) => {
                    stats.tuples_rescanned +=
                        current.relation_size(ind.source) + current.relation_size(ind.target);
                    if let Some(src_tuple) = ind.find_violation(&current) {
                        let repair = ind_repair_tuple(&current, ind, &src_tuple, &mut null_counter);
                        current.add_fact(ind.target, repair);
                        stats.ind_additions += 1;
                        changed = true;
                        steps += 1;
                    }
                }
                Constraint::Disjoint(dc) => {
                    stats.tuples_rescanned +=
                        current.relation_size(dc.left.0) + current.relation_size(dc.right.0);
                    if !dc.satisfied(&current) {
                        return ChaseOutcome::Failed {
                            violated: constraint.clone(),
                        };
                    }
                }
            }
        }

        if !changed {
            return ChaseOutcome::Completed(current);
        }
    }
}

/// Per-constraint record of which facts changed since the constraint was last
/// verified.  `All` (the initial state) means "never verified: examine
/// everything"; a verified constraint drops to an explicit — usually empty —
/// tuple set that repairs grow again.
#[derive(Debug, Clone)]
enum DirtySet {
    All,
    Tuples(BTreeSet<Tuple>),
}

impl DirtySet {
    fn add(&mut self, tuple: &Tuple) {
        if let DirtySet::Tuples(set) = self {
            set.insert(tuple.clone());
        }
    }

    fn remove(&mut self, tuple: &Tuple) {
        if let DirtySet::Tuples(set) = self {
            set.remove(tuple);
        }
    }
}

/// Dirty-tracking state for one constraint (parallel to the constraint list).
#[derive(Debug, Clone)]
enum ConstraintState {
    Fd(DirtySet),
    Ind(DirtySet),
    /// Disjointness is a denial constraint: all it needs is a "touched since
    /// last verified" flag.
    Disjoint(bool),
}

/// The incremental chase: identical repair skeleton to [`chase_scan`], but
/// violation discovery only re-examines dirty facts (probing FD groups and
/// IND witnesses through the per-position indexes) and FD merges touch only
/// the facts that mention the merged value, keeping the index maintained.
fn chase_incremental(
    instance: &Instance,
    constraints: &[Constraint],
    config: &ChaseConfig,
    stats: &mut ChaseStats,
) -> ChaseOutcome {
    let mut current = instance.clone();
    let mut null_counter = next_null_id(&current);
    let mut steps = 0usize;
    let mut states: Vec<ConstraintState> = constraints
        .iter()
        .map(|c| match c {
            Constraint::Fd(_) => ConstraintState::Fd(DirtySet::All),
            Constraint::Ind(_) => ConstraintState::Ind(DirtySet::All),
            Constraint::Disjoint(_) => ConstraintState::Disjoint(true),
        })
        .collect();

    loop {
        if steps > config.max_steps {
            return ChaseOutcome::BudgetExhausted(current);
        }
        stats.passes += 1;
        let _pass_span = trace::span_fields("chase.pass", &[("pass", stats.passes as u64)]);
        let mut changed = false;

        for ci in 0..constraints.len() {
            stats.violation_checks += 1;
            match &constraints[ci] {
                Constraint::Fd(fd) => {
                    let violation = {
                        let ConstraintState::Fd(dirty) = &mut states[ci] else {
                            unreachable!("states are built parallel to constraints");
                        };
                        fd_violation_incremental(&current, fd, dirty, stats)
                    };
                    if let Some((t1, t2)) = violation {
                        let v1 = t1.get(fd.rhs).copied().expect("validated position");
                        let v2 = t2.get(fd.rhs).copied().expect("validated position");
                        match equate(v1, v2) {
                            Some((from, to)) => {
                                substitute_incremental(
                                    &mut current,
                                    from,
                                    to,
                                    constraints,
                                    &mut states,
                                    stats,
                                );
                                stats.fd_merges += 1;
                                changed = true;
                                steps += 1;
                            }
                            None => {
                                return ChaseOutcome::Failed {
                                    violated: constraints[ci].clone(),
                                };
                            }
                        }
                    }
                }
                Constraint::Ind(ind) => {
                    let violation = {
                        let ConstraintState::Ind(dirty) = &mut states[ci] else {
                            unreachable!("states are built parallel to constraints");
                        };
                        ind_violation_incremental(&current, ind, dirty, stats)
                    };
                    if let Some(src_tuple) = violation {
                        let repair = ind_repair_tuple(&current, ind, &src_tuple, &mut null_counter);
                        current.add_fact(ind.target, repair.clone());
                        propagate_addition(ind.target, &repair, constraints, &mut states);
                        stats.ind_additions += 1;
                        changed = true;
                        steps += 1;
                    }
                }
                Constraint::Disjoint(dc) => {
                    let ConstraintState::Disjoint(dirty) = &mut states[ci] else {
                        unreachable!("states are built parallel to constraints");
                    };
                    if *dirty {
                        stats.tuples_rescanned +=
                            current.relation_size(dc.left.0) + current.relation_size(dc.right.0);
                        if !dc.satisfied(&current) {
                            return ChaseOutcome::Failed {
                                violated: constraints[ci].clone(),
                            };
                        }
                        *dirty = false;
                    }
                }
            }
        }

        if !changed {
            return ChaseOutcome::Completed(current);
        }
    }
}

/// The `(position, value)` pairs of a tuple's FD left-hand side, or `None`
/// when the tuple lacks one of the positions — such a tuple can never agree
/// with anything on the LHS ([`Tuple::agrees_on`] requires the positions to
/// exist), so it cannot participate in a violation.
fn lhs_pairs(fd: &FunctionalDependency, tuple: &Tuple) -> Option<Vec<(usize, Value)>> {
    fd.lhs
        .iter()
        .map(|&p| tuple.get(p).map(|v| (p, *v)))
        .collect()
}

/// The outcome of probing one FD group (all tuples sharing an LHS
/// projection).
enum GroupCheck {
    /// The scan-order violation: the group's first tuple and the first member
    /// whose RHS differs from it.
    Violation(Tuple, Tuple),
    /// No violation; the members, so the caller can mark them clean.
    Clean(Vec<Tuple>),
}

/// Probes one FD group through the instance's index (or scan fallback).  The
/// anchor of a violating group is always its tuple-order-first member, and
/// the partner the first member disagreeing with the anchor — exactly the
/// pair the nested scan of `find_violation` reports.
fn check_group(
    current: &Instance,
    fd: &FunctionalDependency,
    pairs: &[(usize, Value)],
    stats: &mut ChaseStats,
) -> GroupCheck {
    let mut members = current.tuples_matching_all(fd.relation, pairs);
    let Some(anchor) = members.next() else {
        return GroupCheck::Clean(Vec::new());
    };
    stats.tuples_rescanned += 1;
    let anchor_rhs = anchor.get(fd.rhs);
    let mut clean = vec![anchor.clone()];
    for member in members {
        stats.tuples_rescanned += 1;
        if member.get(fd.rhs) != anchor_rhs {
            return GroupCheck::Violation(anchor.clone(), member.clone());
        }
        clean.push(member.clone());
    }
    GroupCheck::Clean(clean)
}

/// Incremental FD violation discovery.  Only groups containing a dirty tuple
/// can violate (clean tuples are pairwise verified and every perturbation
/// re-dirties the facts it touches), and within a group the scan's violation
/// choice depends only on the group — so probing the dirty groups and taking
/// the violation with the tuple-order-least anchor reproduces the scan's
/// first violation exactly.
fn fd_violation_incremental(
    current: &Instance,
    fd: &FunctionalDependency,
    dirty: &mut DirtySet,
    stats: &mut ChaseStats,
) -> Option<(Tuple, Tuple)> {
    match dirty {
        DirtySet::All => {
            // First check: walk the relation in tuple order, probing each
            // group once.  Anchors appear in ascending order, so the first
            // violating group found is the scan's first violation.
            let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
            let mut clean: BTreeSet<Tuple> = BTreeSet::new();
            for tuple in current.tuples(fd.relation) {
                stats.tuples_rescanned += 1;
                let Some(pairs) = lhs_pairs(fd, tuple) else {
                    clean.insert(tuple.clone());
                    continue;
                };
                if !seen.insert(pairs.iter().map(|(_, v)| *v).collect()) {
                    continue;
                }
                match check_group(current, fd, &pairs, stats) {
                    GroupCheck::Violation(anchor, partner) => {
                        // Everything not yet verified clean stays dirty.
                        let remaining: BTreeSet<Tuple> = current
                            .tuples(fd.relation)
                            .filter(|t| !clean.contains(t))
                            .cloned()
                            .collect();
                        *dirty = DirtySet::Tuples(remaining);
                        return Some((anchor, partner));
                    }
                    GroupCheck::Clean(members) => clean.extend(members),
                }
            }
            *dirty = DirtySet::Tuples(BTreeSet::new());
            None
        }
        DirtySet::Tuples(set) => {
            let candidates: Vec<Tuple> = set.iter().cloned().collect();
            let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
            let mut best: Option<(Tuple, Tuple)> = None;
            for candidate in candidates {
                stats.tuples_rescanned += 1;
                let Some(pairs) = lhs_pairs(fd, &candidate) else {
                    set.remove(&candidate);
                    continue;
                };
                if !seen.insert(pairs.iter().map(|(_, v)| *v).collect()) {
                    continue;
                }
                match check_group(current, fd, &pairs, stats) {
                    GroupCheck::Violation(anchor, partner) => {
                        if best.as_ref().map_or(true, |(b, _)| anchor < *b) {
                            best = Some((anchor, partner));
                        }
                    }
                    GroupCheck::Clean(members) => {
                        set.remove(&candidate);
                        for member in members {
                            set.remove(&member);
                        }
                    }
                }
            }
            best
        }
    }
}

/// True if a source tuple has a matching target tuple, probed through the
/// target's index when the source projection is full-length (the probe and
/// the scan agree exactly then); short tuples fall back to the scan's
/// projected-sequence comparison.
fn source_matched(current: &Instance, ind: &InclusionDependency, src: &Tuple) -> bool {
    let pairs: Option<Vec<(usize, Value)>> = ind
        .source_positions
        .iter()
        .zip(&ind.target_positions)
        .map(|(&sp, &tp)| src.get(sp).map(|v| (tp, *v)))
        .collect();
    match pairs {
        Some(pairs) => current
            .tuples_matching_all(ind.target, &pairs)
            .next()
            .is_some(),
        None => {
            let projected = src.project(&ind.source_positions);
            current
                .tuples(ind.target)
                .any(|t| t.project(&ind.target_positions) == projected)
        }
    }
}

/// Incremental IND violation discovery: unmatched sources are always dirty
/// (verified-matched sources leave the set, and target-tuple removals re-dirty
/// the sources they witnessed), so the tuple-order-first dirty unmatched
/// source is the scan's first violation.
fn ind_violation_incremental(
    current: &Instance,
    ind: &InclusionDependency,
    dirty: &mut DirtySet,
    stats: &mut ChaseStats,
) -> Option<Tuple> {
    match dirty {
        DirtySet::All => {
            let mut verified: BTreeSet<Tuple> = BTreeSet::new();
            for src in current.tuples(ind.source) {
                stats.tuples_rescanned += 1;
                if source_matched(current, ind, src) {
                    verified.insert(src.clone());
                    continue;
                }
                // The suffix from the first unmatched source on is unverified.
                let remaining: BTreeSet<Tuple> = current
                    .tuples(ind.source)
                    .filter(|t| !verified.contains(t))
                    .cloned()
                    .collect();
                *dirty = DirtySet::Tuples(remaining);
                return Some(src.clone());
            }
            *dirty = DirtySet::Tuples(BTreeSet::new());
            None
        }
        DirtySet::Tuples(set) => {
            let candidates: Vec<Tuple> = set.iter().cloned().collect();
            for candidate in candidates {
                stats.tuples_rescanned += 1;
                if !current.contains(ind.source, &candidate) {
                    set.remove(&candidate);
                    continue;
                }
                if source_matched(current, ind, &candidate) {
                    set.remove(&candidate);
                    continue;
                }
                return Some(candidate);
            }
            None
        }
    }
}

/// Marks every constraint that could be affected by a newly added fact dirty.
/// Additions to an IND's *target* side are deliberately not tracked: adding a
/// witness can only fix inclusion violations, never create one.
fn propagate_addition(
    relation: RelId,
    tuple: &Tuple,
    constraints: &[Constraint],
    states: &mut [ConstraintState],
) {
    for (constraint, state) in constraints.iter().zip(states.iter_mut()) {
        match (constraint, state) {
            (Constraint::Fd(fd), ConstraintState::Fd(dirty)) if fd.relation == relation => {
                dirty.add(tuple);
            }
            (Constraint::Ind(ind), ConstraintState::Ind(dirty)) if ind.source == relation => {
                dirty.add(tuple);
            }
            (Constraint::Disjoint(dc), ConstraintState::Disjoint(flag))
                if dc.left.0 == relation || dc.right.0 == relation =>
            {
                *flag = true;
            }
            _ => {}
        }
    }
}

/// Re-dirties the sources whose inclusion witness may have been the removed
/// target tuple, found by probing the source relation for the removed
/// tuple's (old) projection.  A short target tuple (missing projected
/// positions) falls back to marking the whole source side dirty.
fn redirty_orphaned_sources(
    current: &Instance,
    ind: &InclusionDependency,
    removed_target: &Tuple,
    dirty: &mut DirtySet,
) {
    if matches!(dirty, DirtySet::All) {
        return;
    }
    let pairs: Option<Vec<(usize, Value)>> = ind
        .target_positions
        .iter()
        .zip(&ind.source_positions)
        .map(|(&tp, &sp)| removed_target.get(tp).map(|v| (sp, *v)))
        .collect();
    match pairs {
        Some(pairs) => {
            let suspects: Vec<Tuple> = current
                .tuples_matching_all(ind.source, &pairs)
                .cloned()
                .collect();
            for suspect in suspects {
                dirty.add(&suspect);
            }
        }
        None => *dirty = DirtySet::All,
    }
}

/// Applies the FD merge `from → to` by rewriting exactly the facts that
/// mention `from` (discovered through the per-position index when one is
/// live), updating every constraint's dirty state, and leaving the
/// instance's index maintained — the incremental replacement for the scan
/// chase's whole-instance `map_values` rebuild.
fn substitute_incremental(
    current: &mut Instance,
    from: Value,
    to: Value,
    constraints: &[Constraint],
    states: &mut [ConstraintState],
    stats: &mut ChaseStats,
) {
    // Discover the facts mentioning `from`.  With a live index of uniform
    // arity the per-position posting lists answer this in time proportional
    // to the hits; otherwise scan.
    let relations: Vec<RelId> = current.nonempty_relations().collect();
    let mut hits: Vec<(RelId, Tuple)> = Vec::new();
    for rel in relations {
        match current.known_uniform_arity(rel) {
            Some(arity) => {
                let mut seen: BTreeSet<Tuple> = BTreeSet::new();
                for position in 0..arity {
                    for tuple in current.tuples_matching(rel, position, &from) {
                        seen.insert(tuple.clone());
                    }
                }
                hits.extend(seen.into_iter().map(|t| (rel, t)));
            }
            None => {
                hits.extend(
                    current
                        .tuples(rel)
                        .filter(|t| t.values().contains(&from))
                        .cloned()
                        .map(|t| (rel, t)),
                );
            }
        }
    }
    stats.facts_rewritten += hits.len();
    if current.built_index().is_some() {
        stats.index_rebuilds_avoided += 1;
    }

    // Remove every hit first, then add every rewritten fact: set semantics
    // (rewrites collapsing into existing facts, or into each other) match
    // `map_values` exactly.
    for (rel, old) in &hits {
        current.remove_fact(*rel, old);
    }
    let rewritten: Vec<(RelId, Tuple, Tuple)> = hits
        .into_iter()
        .map(|(rel, old)| {
            let new = old.map_values(|v| if *v == from { to } else { *v });
            (rel, old, new)
        })
        .collect();
    for (rel, _, new) in &rewritten {
        current.add_fact(*rel, new.clone());
    }

    // Dirty propagation: a rewritten fact is a removal of its old self and an
    // addition of its new self for every constraint watching its relation; a
    // removal on an IND's target side may orphan sources.
    for (constraint, state) in constraints.iter().zip(states.iter_mut()) {
        match (constraint, state) {
            (Constraint::Fd(fd), ConstraintState::Fd(dirty)) => {
                for (rel, old, new) in &rewritten {
                    if *rel == fd.relation {
                        dirty.remove(old);
                        dirty.add(new);
                    }
                }
            }
            (Constraint::Ind(ind), ConstraintState::Ind(dirty)) => {
                for (rel, old, new) in &rewritten {
                    if *rel == ind.source {
                        dirty.remove(old);
                        dirty.add(new);
                    }
                    if *rel == ind.target {
                        redirty_orphaned_sources(current, ind, old, dirty);
                    }
                }
            }
            (Constraint::Disjoint(dc), ConstraintState::Disjoint(flag))
                if rewritten
                    .iter()
                    .any(|(rel, _, _)| *rel == dc.left.0 || *rel == dc.right.0) =>
            {
                *flag = true;
            }
            _ => {}
        }
    }
}

/// Builds the repair tuple for an IND violation: the target arity is taken
/// from the first target tuple (or the highest target position), every
/// position gets a fresh labelled null — the counter advances for *every*
/// position, covered or not, which pins the null-naming sequence both chase
/// modes share — and the covered positions are then overwritten with the
/// source's values.
fn ind_repair_tuple(
    current: &Instance,
    ind: &InclusionDependency,
    src_tuple: &Tuple,
    null_counter: &mut u64,
) -> Tuple {
    let target_arity = current
        .tuples(ind.target)
        .next()
        .map(Tuple::arity)
        .unwrap_or_else(|| ind.target_positions.iter().max().map_or(0, |m| m + 1));
    let mut values: Vec<Value> = (0..target_arity)
        .map(|_| {
            *null_counter += 1;
            Value::labelled_null(*null_counter)
        })
        .collect();
    for (sp, tp) in ind.source_positions.iter().zip(&ind.target_positions) {
        if let Some(v) = src_tuple.get(*sp) {
            values[*tp] = *v;
        }
    }
    Tuple::new(values)
}

/// Decides which of two values should be rewritten into the other.
///
/// Returns `Some((from, to))` meaning "replace `from` by `to` everywhere", or
/// `None` if both are distinct non-null constants (a hard failure).
fn equate(v1: Value, v2: Value) -> Option<(Value, Value)> {
    match (v1.is_labelled_null(), v2.is_labelled_null()) {
        (true, _) => Some((v1, v2)),
        (false, true) => Some((v2, v1)),
        (false, false) => None,
    }
}

fn next_null_id(instance: &Instance) -> u64 {
    let mut max = 0u64;
    for value in instance.active_domain() {
        if let Value::Null(id) = value {
            max = max.max(id);
        }
    }
    max
}

/// Result of a bounded implication test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implication {
    /// The dependency is implied.
    Implied,
    /// The dependency is not implied (the chase produced a counter-model).
    NotImplied,
    /// The bounded chase could not settle the question within its budget.
    Unknown,
}

/// Bounded test of whether `sigma` (an FD) is implied by `constraints`
/// (FDs and inclusion dependencies) using the classical two-tuple chase.
///
/// Used as the ground-truth oracle when exercising the paper's
/// undecidability gadgets on concrete dependency sets for which the chase
/// terminates.
#[must_use]
pub fn implies_fd(
    constraints: &[Constraint],
    sigma: &FunctionalDependency,
    arities: &BTreeMap<RelId, usize>,
    config: &ChaseConfig,
) -> Implication {
    let Some(&arity) = arities.get(&sigma.relation) else {
        return Implication::Unknown;
    };
    // Build the canonical two-tuple instance: two tuples over fresh nulls that
    // agree exactly on the LHS of sigma.
    let mut instance = Instance::new();
    let mut counter = 0u64;
    let mut fresh = || {
        counter += 1;
        Value::labelled_null(counter)
    };
    let shared: Vec<Value> = (0..arity).map(|_| fresh()).collect();
    let t1: Vec<Value> = (0..arity)
        .map(|p| {
            if sigma.lhs.contains(&p) {
                shared[p]
            } else {
                fresh()
            }
        })
        .collect();
    let t2: Vec<Value> = (0..arity)
        .map(|p| {
            if sigma.lhs.contains(&p) {
                shared[p]
            } else {
                fresh()
            }
        })
        .collect();
    let rhs_markers = (t1[sigma.rhs], t2[sigma.rhs]);
    instance.add_fact(sigma.relation, Tuple::new(t1));
    instance.add_fact(sigma.relation, Tuple::new(t2));

    match chase(&instance, constraints, config) {
        ChaseOutcome::Completed(result) => {
            // The FD is implied iff the chase equated the two RHS markers
            // (i.e. one of them no longer occurs, having been rewritten into
            // the other, or they became the same value).
            let dom = result.active_domain();
            let both_present = dom.contains(&rhs_markers.0) && dom.contains(&rhs_markers.1);
            if both_present && rhs_markers.0 != rhs_markers.1 {
                Implication::NotImplied
            } else {
                Implication::Implied
            }
        }
        ChaseOutcome::Failed { .. } => Implication::Implied,
        ChaseOutcome::BudgetExhausted(_) => Implication::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{DisjointnessConstraint, InclusionDependency};
    use crate::tuple;

    /// Runs both chase modes and asserts identical outcomes and identical
    /// repair counters before returning the (shared) outcome.
    fn chase_both_ways(
        inst: &Instance,
        constraints: &[Constraint],
        max_steps: usize,
    ) -> ChaseOutcome {
        let incremental = ChaseConfig {
            max_steps,
            incremental: true,
        };
        let scan = ChaseConfig {
            max_steps,
            incremental: false,
        };
        let (inc_outcome, inc_stats) = chase_with_stats(inst, constraints, &incremental);
        let (scan_outcome, scan_stats) = chase_with_stats(inst, constraints, &scan);
        assert_eq!(inc_outcome, scan_outcome, "chase modes diverged");
        assert_eq!(inc_stats.passes, scan_stats.passes);
        assert_eq!(inc_stats.violation_checks, scan_stats.violation_checks);
        assert_eq!(inc_stats.fd_merges, scan_stats.fd_merges);
        assert_eq!(inc_stats.ind_additions, scan_stats.ind_additions);
        inc_outcome
    }

    #[test]
    fn chase_repairs_inclusion_dependency() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("S", tuple!["z", "z"]);
        let constraints = vec![Constraint::Ind(InclusionDependency::new(
            "R",
            vec![1],
            "S",
            vec![0],
        ))];
        let outcome = chase_both_ways(&inst, &constraints, 10_000);
        let result = outcome.completed().expect("chase terminates");
        // A new S-tuple with first component "b" must have been added.
        assert!(result
            .tuples("S")
            .any(|t| t.get(0) == Some(&Value::str("b"))));
        assert!(constraints.iter().all(|c| c.satisfied(&result)));
    }

    #[test]
    fn chase_fails_on_hard_fd_conflict() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("R", tuple!["a", "c"]);
        let constraints = vec![Constraint::Fd(FunctionalDependency::new("R", vec![0], 1))];
        assert!(matches!(
            chase_both_ways(&inst, &constraints, 10_000),
            ChaseOutcome::Failed { .. }
        ));
    }

    #[test]
    fn chase_equates_nulls_for_fd() {
        let mut inst = Instance::new();
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(1)]),
        );
        inst.add_fact("R", Tuple::new(vec![Value::str("a"), Value::str("b")]));
        let constraints = vec![Constraint::Fd(FunctionalDependency::new("R", vec![0], 1))];
        let result = chase_both_ways(&inst, &constraints, 10_000)
            .completed()
            .expect("null can be equated");
        assert_eq!(result.relation_size("R"), 1);
        assert!(result.contains("R", &tuple!["a", "b"]));
    }

    #[test]
    fn fd_merge_of_two_nulls_rewrites_the_first_into_the_second() {
        // Both sides of the FD violation are chase nulls: `equate` must
        // rewrite the tuple-order-first null into the second, everywhere in
        // the instance (including other relations mentioning it).
        let mut inst = Instance::new();
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(1)]),
        );
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(2)]),
        );
        inst.add_fact("S", Tuple::new(vec![Value::labelled_null(1)]));
        let constraints = vec![Constraint::Fd(FunctionalDependency::new("R", vec![0], 1))];
        let result = chase_both_ways(&inst, &constraints, 10_000)
            .completed()
            .expect("null-null merges never hard-fail");
        // The two R-tuples collapse into one, carrying the surviving null.
        assert_eq!(result.relation_size("R"), 1);
        assert!(result.contains(
            "R",
            &Tuple::new(vec![Value::str("a"), Value::labelled_null(2)])
        ));
        // The merge propagated into S: ⊥1 no longer occurs anywhere.
        assert!(result.contains("S", &Tuple::new(vec![Value::labelled_null(2)])));
        assert!(!result.active_domain().contains(&Value::labelled_null(1)));
    }

    #[test]
    fn ind_repair_pads_unknown_target_positions_with_fresh_nulls() {
        // The target relation is empty, so its arity is inferred from the
        // highest target position; uncovered positions get fresh nulls.
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a"]);
        let constraints = vec![Constraint::Ind(InclusionDependency::new(
            "R",
            vec![0],
            "S",
            vec![1],
        ))];
        let result = chase_both_ways(&inst, &constraints, 10_000)
            .completed()
            .expect("one repair step suffices");
        let repaired: Vec<&Tuple> = result.tuples("S").collect();
        assert_eq!(repaired.len(), 1);
        assert_eq!(repaired[0].arity(), 2);
        assert_eq!(repaired[0].get(1), Some(&Value::str("a")));
        assert!(repaired[0].get(0).unwrap().is_labelled_null());
        assert!(constraints.iter().all(|c| c.satisfied(&result)));
    }

    #[test]
    fn ind_repairs_cascade_in_constraint_order() {
        // R[1] ⊆ S[0] fires first (constraints are applied in list order,
        // one repair per pass), then the repaired S-fact triggers
        // S[0] ⊆ T[0] on the next pass.
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        let constraints = vec![
            Constraint::Ind(InclusionDependency::new("R", vec![1], "S", vec![0])),
            Constraint::Ind(InclusionDependency::new("S", vec![0], "T", vec![0])),
        ];
        let result = chase_both_ways(&inst, &constraints, 10_000)
            .completed()
            .expect("the cascade terminates");
        assert!(result.contains("S", &tuple!["b"]));
        assert!(result.contains("T", &tuple!["b"]));
        assert_eq!(result.fact_count(), 3);
        assert!(constraints.iter().all(|c| c.satisfied(&result)));

        // Reversing the constraint list reaches the same fixpoint here (one
        // extra pass), exercising the opposite discovery order.
        let reversed: Vec<Constraint> = constraints.iter().rev().cloned().collect();
        let reversed_result = chase_both_ways(&inst, &reversed, 10_000)
            .completed()
            .expect("the cascade terminates");
        assert_eq!(reversed_result, result);
    }

    #[test]
    fn second_chase_pass_is_idempotent() {
        // Chasing a chase result must be a fixpoint: `Completed` with the
        // instance unchanged, for both repair kinds (FD null merges and IND
        // tuple additions).
        let mut inst = Instance::new();
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(7)]),
        );
        inst.add_fact("R", Tuple::new(vec![Value::str("a"), Value::str("b")]));
        inst.add_fact("R", Tuple::new(vec![Value::str("c"), Value::str("d")]));
        let constraints = vec![
            Constraint::Fd(FunctionalDependency::new("R", vec![0], 1)),
            Constraint::Ind(InclusionDependency::new("R", vec![1], "S", vec![0])),
        ];
        let first = chase_both_ways(&inst, &constraints, 10_000)
            .completed()
            .expect("repairs terminate");
        assert!(constraints.iter().all(|c| c.satisfied(&first)));
        let second = chase_both_ways(&first, &constraints, 10_000)
            .completed()
            .expect("a satisfied instance chases to itself");
        assert_eq!(second, first);
    }

    #[test]
    fn chase_detects_disjointness_violation() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["x"]);
        inst.add_fact("S", tuple!["x"]);
        let constraints = vec![Constraint::Disjoint(DisjointnessConstraint::new(
            "R", 0, "S", 0,
        ))];
        assert!(matches!(
            chase_both_ways(&inst, &constraints, 10_000),
            ChaseOutcome::Failed { .. }
        ));
    }

    #[test]
    fn chase_budget_is_respected_on_divergent_input() {
        // R[1] ⊆ S[1] and S[1] ⊆ R[2]-style cycle that keeps inventing nulls:
        // R(x,y) requires S(y), S(z) requires R(z, fresh) — diverges.
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        let constraints = vec![
            Constraint::Ind(InclusionDependency::new("R", vec![1], "S", vec![0])),
            Constraint::Ind(InclusionDependency::new("S", vec![0], "R", vec![1])),
            Constraint::Ind(InclusionDependency::new("R", vec![0], "S", vec![0])),
            Constraint::Ind(InclusionDependency::new("S", vec![0], "R", vec![0])),
        ];
        let outcome = chase_both_ways(&inst, &constraints, 50);
        // Either it terminates (if the nulls happen to close a cycle) or the
        // budget is exhausted; it must not loop forever. With this particular
        // set the chase keeps adding S-facts for new R nulls, so the budget is
        // reached.
        match outcome {
            ChaseOutcome::BudgetExhausted(inst) => assert!(inst.fact_count() > 1),
            ChaseOutcome::Completed(inst) => {
                assert!(constraints.iter().all(|c| c.satisfied(&inst)));
            }
            ChaseOutcome::Failed { .. } => panic!("no denial constraints present"),
        }
    }

    #[test]
    fn chase_stats_count_repairs_identically_across_modes() {
        // An FD null-merge plus two cascading IND repairs: the repair
        // counters must agree between modes, and the incremental mode is the
        // only one rewriting individual facts.
        let mut inst = Instance::new();
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(1)]),
        );
        inst.add_fact("R", Tuple::new(vec![Value::str("a"), Value::str("b")]));
        let constraints = vec![
            Constraint::Fd(FunctionalDependency::new("R", vec![0], 1)),
            Constraint::Ind(InclusionDependency::new("R", vec![1], "S", vec![0])),
            Constraint::Ind(InclusionDependency::new("S", vec![0], "T", vec![0])),
        ];
        let (outcome, inc) = chase_with_stats(
            &inst,
            &constraints,
            &ChaseConfig {
                max_steps: 10_000,
                incremental: true,
            },
        );
        let (scan_outcome, scan) = chase_with_stats(
            &inst,
            &constraints,
            &ChaseConfig {
                max_steps: 10_000,
                incremental: false,
            },
        );
        assert_eq!(outcome, scan_outcome);
        assert_eq!(inc.fd_merges, 1);
        assert_eq!(inc.ind_additions, 2);
        assert_eq!(inc.repairs(), 3);
        assert_eq!(scan.fd_merges, inc.fd_merges);
        assert_eq!(scan.ind_additions, inc.ind_additions);
        assert_eq!(scan.passes, inc.passes);
        assert_eq!(scan.violation_checks, inc.violation_checks);
        // The FD merge rewrote exactly the one fact mentioning the null.
        assert_eq!(inc.facts_rewritten, 1);
        assert_eq!(scan.facts_rewritten, 0);
    }

    #[test]
    fn incremental_mode_rescans_fewer_tuples_on_repair_cascades() {
        // R[0] ⊆ S[0] over an empty S forces one repair per pass: the scan
        // baseline re-walks R and the growing S every pass (quadratic), while
        // the dirty set shrinks by the freshly-witnessed source each pass.
        let mut inst = Instance::new();
        for i in 0..20 {
            inst.add_fact("R", tuple![format!("r{i:02}")]);
        }
        let constraints = vec![Constraint::Ind(InclusionDependency::new(
            "R",
            vec![0],
            "S",
            vec![0],
        ))];
        let (inc_outcome, inc) = chase_with_stats(
            &inst,
            &constraints,
            &ChaseConfig {
                max_steps: 10_000,
                incremental: true,
            },
        );
        let (scan_outcome, scan) = chase_with_stats(
            &inst,
            &constraints,
            &ChaseConfig {
                max_steps: 10_000,
                incremental: false,
            },
        );
        assert_eq!(inc_outcome, scan_outcome);
        assert_eq!(inc.ind_additions, 20);
        assert_eq!(scan.ind_additions, 20);
        assert!(
            inc.tuples_rescanned * 4 < scan.tuples_rescanned,
            "incremental rescans ({}) should be far below scan rescans ({})",
            inc.tuples_rescanned,
            scan.tuples_rescanned
        );
    }

    #[test]
    fn incremental_is_the_baseline_and_env_name_is_stable() {
        assert!(ChaseConfig::base().incremental);
        assert_eq!(ChaseConfig::base().max_steps, 10_000);
        assert_eq!(
            DISABLE_INCREMENTAL_CHASE_ENV_VAR,
            "ACCLTL_DISABLE_INCREMENTAL_CHASE"
        );
    }

    #[test]
    fn implication_of_transitive_fd() {
        // R: 1→2 and R: 2→3 imply R: 1→3.
        let constraints = vec![
            Constraint::Fd(FunctionalDependency::new("R", vec![0], 1)),
            Constraint::Fd(FunctionalDependency::new("R", vec![1], 2)),
        ];
        let sigma = FunctionalDependency::new("R", vec![0], 2);
        let arities = BTreeMap::from([(RelId::new("R"), 3)]);
        assert_eq!(
            implies_fd(&constraints, &sigma, &arities, &ChaseConfig::base()),
            Implication::Implied
        );

        let not_implied = FunctionalDependency::new("R", vec![2], 0);
        assert_eq!(
            implies_fd(&constraints, &not_implied, &arities, &ChaseConfig::base()),
            Implication::NotImplied
        );
    }

    #[test]
    fn implication_with_inclusion_dependency() {
        // Classic interaction: R[1,2] ⊆ S[1,2] and S: 1→2 imply R: 1→2.
        let constraints = vec![
            Constraint::Ind(InclusionDependency::new("R", vec![0, 1], "S", vec![0, 1])),
            Constraint::Fd(FunctionalDependency::new("S", vec![0], 1)),
        ];
        let sigma = FunctionalDependency::new("R", vec![0], 1);
        let arities = BTreeMap::from([(RelId::new("R"), 2), (RelId::new("S"), 2)]);
        assert_eq!(
            implies_fd(&constraints, &sigma, &arities, &ChaseConfig::base()),
            Implication::Implied
        );
    }

    #[test]
    fn implication_unknown_for_missing_arity() {
        let sigma = FunctionalDependency::new("Z", vec![0], 1);
        assert_eq!(
            implies_fd(&[], &sigma, &BTreeMap::new(), &ChaseConfig::base()),
            Implication::Unknown
        );
    }
}
