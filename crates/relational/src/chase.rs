//! The chase procedure for functional and inclusion dependencies.
//!
//! The chase is used (a) to decide implication of dependencies on concrete,
//! terminating inputs — the ground truth against which the paper's
//! undecidability gadgets (Theorems 3.1, 5.2, 5.3) are tested — and (b) to
//! repair instances against inclusion dependencies when generating
//! constraint-satisfying workloads for the benchmarks.
//!
//! Because the implication problem for FDs + inclusion dependencies is
//! undecidable, the chase here is *bounded*: it runs for at most a configured
//! number of steps and reports honestly when the budget is exhausted.

use std::collections::BTreeMap;

use crate::constraints::{Constraint, FunctionalDependency};
use crate::instance::Instance;
use crate::symbols::RelId;
use crate::tuple::Tuple;
use crate::value::Value;

/// Configuration for the bounded chase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseConfig {
    /// Maximum number of chase steps (tuple additions or equations) applied
    /// before giving up.
    pub max_steps: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig { max_steps: 10_000 }
    }
}

/// The result of running the bounded chase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// The chase terminated; the returned instance satisfies every FD and
    /// inclusion dependency in the input (disjointness constraints are not
    /// repaired — see [`ChaseOutcome::Failed`]).
    Completed(Instance),
    /// The chase failed: an FD required equating two distinct non-null
    /// constants, or a disjointness constraint was violated (denial
    /// constraints cannot be repaired).
    Failed {
        /// The constraint that caused the failure.
        violated: Constraint,
    },
    /// The step budget ran out before reaching a fixpoint (the instance built
    /// so far is returned for inspection).
    BudgetExhausted(Instance),
}

impl ChaseOutcome {
    /// The instance produced, if the chase terminated successfully.
    #[must_use]
    pub fn completed(self) -> Option<Instance> {
        match self {
            ChaseOutcome::Completed(inst) => Some(inst),
            _ => None,
        }
    }
}

/// Runs the bounded chase of `instance` with `constraints`.
#[must_use]
pub fn chase(
    instance: &Instance,
    constraints: &[Constraint],
    config: &ChaseConfig,
) -> ChaseOutcome {
    let mut current = instance.clone();
    let mut null_counter = next_null_id(&current);
    let mut steps = 0usize;

    loop {
        if steps > config.max_steps {
            return ChaseOutcome::BudgetExhausted(current);
        }
        let mut changed = false;

        for constraint in constraints {
            match constraint {
                Constraint::Fd(fd) => {
                    if let Some((t1, t2)) = fd.find_violation(&current) {
                        let v1 = t1.get(fd.rhs).copied().expect("validated position");
                        let v2 = t2.get(fd.rhs).copied().expect("validated position");
                        match equate(v1, v2) {
                            Some((from, to)) => {
                                current = current.map_values(|v| if *v == from { to } else { *v });
                                changed = true;
                                steps += 1;
                            }
                            None => {
                                return ChaseOutcome::Failed {
                                    violated: constraint.clone(),
                                };
                            }
                        }
                    }
                }
                Constraint::Ind(ind) => {
                    if let Some(src_tuple) = ind.find_violation(&current) {
                        let target_arity = current
                            .tuples(ind.target)
                            .next()
                            .map(Tuple::arity)
                            .unwrap_or_else(|| {
                                ind.target_positions.iter().max().map_or(0, |m| m + 1)
                            });
                        let mut values: Vec<Value> = (0..target_arity)
                            .map(|_| {
                                null_counter += 1;
                                Value::labelled_null(null_counter)
                            })
                            .collect();
                        for (sp, tp) in ind.source_positions.iter().zip(&ind.target_positions) {
                            if let Some(v) = src_tuple.get(*sp) {
                                values[*tp] = *v;
                            }
                        }
                        current.add_fact(ind.target, Tuple::new(values));
                        changed = true;
                        steps += 1;
                    }
                }
                Constraint::Disjoint(dc) => {
                    if !dc.satisfied(&current) {
                        return ChaseOutcome::Failed {
                            violated: constraint.clone(),
                        };
                    }
                }
            }
        }

        if !changed {
            return ChaseOutcome::Completed(current);
        }
    }
}

/// Decides which of two values should be rewritten into the other.
///
/// Returns `Some((from, to))` meaning "replace `from` by `to` everywhere", or
/// `None` if both are distinct non-null constants (a hard failure).
fn equate(v1: Value, v2: Value) -> Option<(Value, Value)> {
    match (v1.is_labelled_null(), v2.is_labelled_null()) {
        (true, _) => Some((v1, v2)),
        (false, true) => Some((v2, v1)),
        (false, false) => None,
    }
}

fn next_null_id(instance: &Instance) -> u64 {
    let mut max = 0u64;
    for value in instance.active_domain() {
        if let Value::Null(id) = value {
            max = max.max(id);
        }
    }
    max
}

/// Result of a bounded implication test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implication {
    /// The dependency is implied.
    Implied,
    /// The dependency is not implied (the chase produced a counter-model).
    NotImplied,
    /// The bounded chase could not settle the question within its budget.
    Unknown,
}

/// Bounded test of whether `sigma` (an FD) is implied by `constraints`
/// (FDs and inclusion dependencies) using the classical two-tuple chase.
///
/// Used as the ground-truth oracle when exercising the paper's
/// undecidability gadgets on concrete dependency sets for which the chase
/// terminates.
#[must_use]
pub fn implies_fd(
    constraints: &[Constraint],
    sigma: &FunctionalDependency,
    arities: &BTreeMap<RelId, usize>,
    config: &ChaseConfig,
) -> Implication {
    let Some(&arity) = arities.get(&sigma.relation) else {
        return Implication::Unknown;
    };
    // Build the canonical two-tuple instance: two tuples over fresh nulls that
    // agree exactly on the LHS of sigma.
    let mut instance = Instance::new();
    let mut counter = 0u64;
    let mut fresh = || {
        counter += 1;
        Value::labelled_null(counter)
    };
    let shared: Vec<Value> = (0..arity).map(|_| fresh()).collect();
    let t1: Vec<Value> = (0..arity)
        .map(|p| {
            if sigma.lhs.contains(&p) {
                shared[p]
            } else {
                fresh()
            }
        })
        .collect();
    let t2: Vec<Value> = (0..arity)
        .map(|p| {
            if sigma.lhs.contains(&p) {
                shared[p]
            } else {
                fresh()
            }
        })
        .collect();
    let rhs_markers = (t1[sigma.rhs], t2[sigma.rhs]);
    instance.add_fact(sigma.relation, Tuple::new(t1));
    instance.add_fact(sigma.relation, Tuple::new(t2));

    match chase(&instance, constraints, config) {
        ChaseOutcome::Completed(result) => {
            // The FD is implied iff the chase equated the two RHS markers
            // (i.e. one of them no longer occurs, having been rewritten into
            // the other, or they became the same value).
            let dom = result.active_domain();
            let both_present = dom.contains(&rhs_markers.0) && dom.contains(&rhs_markers.1);
            if both_present && rhs_markers.0 != rhs_markers.1 {
                Implication::NotImplied
            } else {
                Implication::Implied
            }
        }
        ChaseOutcome::Failed { .. } => Implication::Implied,
        ChaseOutcome::BudgetExhausted(_) => Implication::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{DisjointnessConstraint, InclusionDependency};
    use crate::tuple;

    #[test]
    fn chase_repairs_inclusion_dependency() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("S", tuple!["z", "z"]);
        let constraints = vec![Constraint::Ind(InclusionDependency::new(
            "R",
            vec![1],
            "S",
            vec![0],
        ))];
        let outcome = chase(&inst, &constraints, &ChaseConfig::default());
        let result = outcome.completed().expect("chase terminates");
        // A new S-tuple with first component "b" must have been added.
        assert!(result
            .tuples("S")
            .any(|t| t.get(0) == Some(&Value::str("b"))));
        assert!(constraints.iter().all(|c| c.satisfied(&result)));
    }

    #[test]
    fn chase_fails_on_hard_fd_conflict() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("R", tuple!["a", "c"]);
        let constraints = vec![Constraint::Fd(FunctionalDependency::new("R", vec![0], 1))];
        assert!(matches!(
            chase(&inst, &constraints, &ChaseConfig::default()),
            ChaseOutcome::Failed { .. }
        ));
    }

    #[test]
    fn chase_equates_nulls_for_fd() {
        let mut inst = Instance::new();
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(1)]),
        );
        inst.add_fact("R", Tuple::new(vec![Value::str("a"), Value::str("b")]));
        let constraints = vec![Constraint::Fd(FunctionalDependency::new("R", vec![0], 1))];
        let result = chase(&inst, &constraints, &ChaseConfig::default())
            .completed()
            .expect("null can be equated");
        assert_eq!(result.relation_size("R"), 1);
        assert!(result.contains("R", &tuple!["a", "b"]));
    }

    #[test]
    fn fd_merge_of_two_nulls_rewrites_the_first_into_the_second() {
        // Both sides of the FD violation are chase nulls: `equate` must
        // rewrite the tuple-order-first null into the second, everywhere in
        // the instance (including other relations mentioning it).
        let mut inst = Instance::new();
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(1)]),
        );
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(2)]),
        );
        inst.add_fact("S", Tuple::new(vec![Value::labelled_null(1)]));
        let constraints = vec![Constraint::Fd(FunctionalDependency::new("R", vec![0], 1))];
        let result = chase(&inst, &constraints, &ChaseConfig::default())
            .completed()
            .expect("null-null merges never hard-fail");
        // The two R-tuples collapse into one, carrying the surviving null.
        assert_eq!(result.relation_size("R"), 1);
        assert!(result.contains(
            "R",
            &Tuple::new(vec![Value::str("a"), Value::labelled_null(2)])
        ));
        // The merge propagated into S: ⊥1 no longer occurs anywhere.
        assert!(result.contains("S", &Tuple::new(vec![Value::labelled_null(2)])));
        assert!(!result.active_domain().contains(&Value::labelled_null(1)));
    }

    #[test]
    fn ind_repair_pads_unknown_target_positions_with_fresh_nulls() {
        // The target relation is empty, so its arity is inferred from the
        // highest target position; uncovered positions get fresh nulls.
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a"]);
        let constraints = vec![Constraint::Ind(InclusionDependency::new(
            "R",
            vec![0],
            "S",
            vec![1],
        ))];
        let result = chase(&inst, &constraints, &ChaseConfig::default())
            .completed()
            .expect("one repair step suffices");
        let repaired: Vec<&Tuple> = result.tuples("S").collect();
        assert_eq!(repaired.len(), 1);
        assert_eq!(repaired[0].arity(), 2);
        assert_eq!(repaired[0].get(1), Some(&Value::str("a")));
        assert!(repaired[0].get(0).unwrap().is_labelled_null());
        assert!(constraints.iter().all(|c| c.satisfied(&result)));
    }

    #[test]
    fn ind_repairs_cascade_in_constraint_order() {
        // R[1] ⊆ S[0] fires first (constraints are applied in list order,
        // one repair per pass), then the repaired S-fact triggers
        // S[0] ⊆ T[0] on the next pass.
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        let constraints = vec![
            Constraint::Ind(InclusionDependency::new("R", vec![1], "S", vec![0])),
            Constraint::Ind(InclusionDependency::new("S", vec![0], "T", vec![0])),
        ];
        let result = chase(&inst, &constraints, &ChaseConfig::default())
            .completed()
            .expect("the cascade terminates");
        assert!(result.contains("S", &tuple!["b"]));
        assert!(result.contains("T", &tuple!["b"]));
        assert_eq!(result.fact_count(), 3);
        assert!(constraints.iter().all(|c| c.satisfied(&result)));

        // Reversing the constraint list reaches the same fixpoint here (one
        // extra pass), exercising the opposite discovery order.
        let reversed: Vec<Constraint> = constraints.iter().rev().cloned().collect();
        let reversed_result = chase(&inst, &reversed, &ChaseConfig::default())
            .completed()
            .expect("the cascade terminates");
        assert_eq!(reversed_result, result);
    }

    #[test]
    fn second_chase_pass_is_idempotent() {
        // Chasing a chase result must be a fixpoint: `Completed` with the
        // instance unchanged, for both repair kinds (FD null merges and IND
        // tuple additions).
        let mut inst = Instance::new();
        inst.add_fact(
            "R",
            Tuple::new(vec![Value::str("a"), Value::labelled_null(7)]),
        );
        inst.add_fact("R", Tuple::new(vec![Value::str("a"), Value::str("b")]));
        inst.add_fact("R", Tuple::new(vec![Value::str("c"), Value::str("d")]));
        let constraints = vec![
            Constraint::Fd(FunctionalDependency::new("R", vec![0], 1)),
            Constraint::Ind(InclusionDependency::new("R", vec![1], "S", vec![0])),
        ];
        let first = chase(&inst, &constraints, &ChaseConfig::default())
            .completed()
            .expect("repairs terminate");
        assert!(constraints.iter().all(|c| c.satisfied(&first)));
        let second = chase(&first, &constraints, &ChaseConfig::default())
            .completed()
            .expect("a satisfied instance chases to itself");
        assert_eq!(second, first);
    }

    #[test]
    fn chase_detects_disjointness_violation() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["x"]);
        inst.add_fact("S", tuple!["x"]);
        let constraints = vec![Constraint::Disjoint(DisjointnessConstraint::new(
            "R", 0, "S", 0,
        ))];
        assert!(matches!(
            chase(&inst, &constraints, &ChaseConfig::default()),
            ChaseOutcome::Failed { .. }
        ));
    }

    #[test]
    fn chase_budget_is_respected_on_divergent_input() {
        // R[1] ⊆ S[1] and S[1] ⊆ R[2]-style cycle that keeps inventing nulls:
        // R(x,y) requires S(y), S(z) requires R(z, fresh) — diverges.
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        let constraints = vec![
            Constraint::Ind(InclusionDependency::new("R", vec![1], "S", vec![0])),
            Constraint::Ind(InclusionDependency::new("S", vec![0], "R", vec![1])),
            Constraint::Ind(InclusionDependency::new("R", vec![0], "S", vec![0])),
            Constraint::Ind(InclusionDependency::new("S", vec![0], "R", vec![0])),
        ];
        let outcome = chase(&inst, &constraints, &ChaseConfig { max_steps: 50 });
        // Either it terminates (if the nulls happen to close a cycle) or the
        // budget is exhausted; it must not loop forever. With this particular
        // set the chase keeps adding S-facts for new R nulls, so the budget is
        // reached.
        match outcome {
            ChaseOutcome::BudgetExhausted(inst) => assert!(inst.fact_count() > 1),
            ChaseOutcome::Completed(inst) => {
                assert!(constraints.iter().all(|c| c.satisfied(&inst)));
            }
            ChaseOutcome::Failed { .. } => panic!("no denial constraints present"),
        }
    }

    #[test]
    fn implication_of_transitive_fd() {
        // R: 1→2 and R: 2→3 imply R: 1→3.
        let constraints = vec![
            Constraint::Fd(FunctionalDependency::new("R", vec![0], 1)),
            Constraint::Fd(FunctionalDependency::new("R", vec![1], 2)),
        ];
        let sigma = FunctionalDependency::new("R", vec![0], 2);
        let arities = BTreeMap::from([(RelId::new("R"), 3)]);
        assert_eq!(
            implies_fd(&constraints, &sigma, &arities, &ChaseConfig::default()),
            Implication::Implied
        );

        let not_implied = FunctionalDependency::new("R", vec![2], 0);
        assert_eq!(
            implies_fd(
                &constraints,
                &not_implied,
                &arities,
                &ChaseConfig::default()
            ),
            Implication::NotImplied
        );
    }

    #[test]
    fn implication_with_inclusion_dependency() {
        // Classic interaction: R[1,2] ⊆ S[1,2] and S: 1→2 imply R: 1→2.
        let constraints = vec![
            Constraint::Ind(InclusionDependency::new("R", vec![0, 1], "S", vec![0, 1])),
            Constraint::Fd(FunctionalDependency::new("S", vec![0], 1)),
        ];
        let sigma = FunctionalDependency::new("R", vec![0], 1);
        let arities = BTreeMap::from([(RelId::new("R"), 2), (RelId::new("S"), 2)]);
        assert_eq!(
            implies_fd(&constraints, &sigma, &arities, &ChaseConfig::default()),
            Implication::Implied
        );
    }

    #[test]
    fn implication_unknown_for_missing_arity() {
        let sigma = FunctionalDependency::new("Z", vec![0], 1);
        assert_eq!(
            implies_fd(&[], &sigma, &BTreeMap::new(), &ChaseConfig::default()),
            Implication::Unknown
        );
    }
}
