//! Guard-verdict memoization over structure fingerprints.
//!
//! The bounded decision procedures spend almost all their time re-deciding
//! the same guard sentences: within one frontier layer the candidate
//! transition structures share a per-state base and differ only in a tiny
//! delta — often only in the `IsBind` fact, which most guards never mention.
//! Yet every `CompiledSentence::holds` call re-runs a full homomorphism
//! search.  This module supplies the two pieces that turn those repeats into
//! hash lookups:
//!
//! * [`StructureKey`] — a cheap, `Copy`, *content-addressed* fingerprint of
//!   an [`InstanceOverlay`](crate::InstanceOverlay)-shaped structure: an
//!   order-independent two-lane digest (plus exact fact count) of the facts
//!   the structure holds, optionally *restricted to the predicates a
//!   sentence mentions* so structures that differ only in irrelevant facts
//!   share one key;
//! * [`GuardCache`] — a sharded `(sentence id, StructureKey) → verdict` map
//!   shared by all of a search's worker threads, with hit/miss counters for
//!   benchmarking and regression tests.
//!
//! Consumers go through
//! [`CompiledSentence::holds_cached`](crate::CompiledSentence::holds_cached),
//! which consults the cache before any homomorphism search and falls back to
//! the uncached path — with byte-identical verdicts by construction — when
//! the cache is disabled ([`DISABLE_GUARD_CACHE_ENV_VAR`], mirroring the
//! `ACCLTL_DISABLE_INDEXES` contract of [`crate::index`]) or when the view
//! cannot produce a key.
//!
//! # Why a content digest is a sound cache key
//!
//! A verdict may be replayed for a key only if the keyed structures are
//! guaranteed to hold the same facts (restricted to the sentence's
//! predicates).  The key *is* a canonical digest of exactly those facts:
//!
//! 1. **The digest is order-independent.**  Each fact is hashed into two
//!    independently seeded 64-bit lanes, and a relation's digest is the
//!    wrapping *sum* of its facts' lane values plus an exact fact count
//!    (`RelationDigest`).  Sums commute, so the digest of a fact set does
//!    not depend on which overlay chain produced it, how the facts split
//!    between an overlay's base and its delta, or which `Arc` allocation
//!    holds the base — equal restricted fact sets get equal keys.  That is
//!    what unlocks cross-state, cross-chain and cross-property cache hits
//!    (an earlier revision keyed on the base `Arc`'s address, which made
//!    every chain an island and forced the cache to pin every base alive).
//! 2. **Base digests are computed once and deltas folded in per fact.**
//!    [`Instance`] caches its per-relation digests the way it caches its
//!    per-position index: built lazily on first demand, maintained
//!    incrementally by `add_fact` (the only mutation on an overlay delta's
//!    hot path), dropped by any other mutation.  So keying a candidate
//!    structure costs a table sum over the sentence's few predicates, not a
//!    rehash of the configuration.
//! 3. **Collisions require defeating both lanes at once.**  Two different
//!    restricted fact sets only collide if both 64-bit lane sums *and* the
//!    fact count coincide (~2⁻¹²⁸ for the lanes); the differential harness
//!    (`tests/guard_cache_props.rs`) and the CI smoke diff cached against
//!    uncached output to keep the whole construction honest.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use accltl_obs::trace;

use crate::index::FxHasher;
use crate::instance::Instance;
use crate::symbols::RelId;
use crate::ucq::PosFormula;

/// Environment variable disabling the guard-verdict cache when set to `1` —
/// every sentence evaluation falls back to the uncached path, which produces
/// byte-identical verdicts, witnesses and budget accounting (CI diffs the
/// search examples both ways, mirroring `ACCLTL_DISABLE_INDEXES`).
///
/// The variable is *read* in exactly one place: `EngineConfig::from_env` in
/// `accltl-paths`, which feeds the per-search `disable_guard_cache` flag the
/// search front-ends pass to [`GuardCache::with_enabled`].  This module only
/// defines the name and the process-wide [`set_guard_cache_enabled`]
/// override used by tests and benches.
pub const DISABLE_GUARD_CACHE_ENV_VAR: &str = "ACCLTL_DISABLE_GUARD_CACHE";

fn cache_override() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

/// True if guard-verdict caching is in use (the default); flipped by
/// [`set_guard_cache_enabled`].
#[must_use]
pub fn guard_cache_enabled() -> bool {
    !cache_override().load(Ordering::Relaxed)
}

/// Process-wide override of [`guard_cache_enabled`], for A/B comparisons in
/// tests and benches.  Cached and uncached evaluation produce identical
/// verdicts by contract, so flipping this mid-run changes performance paths
/// only, never answers.  The flag is sampled when a [`GuardCache`] is
/// created, so a cache in flight keeps its mode.
pub fn set_guard_cache_enabled(enabled: bool) {
    cache_override().store(!enabled, Ordering::Relaxed);
}

/// A cheap, content-addressed fingerprint of an overlay-shaped structure: an
/// order-independent two-lane digest (plus exact fact count) of the facts it
/// holds.
///
/// Produced by
/// [`InstanceOverlay::structure_key`](crate::InstanceOverlay::structure_key)
/// (all facts) and
/// [`InstanceOverlay::structure_key_for`](crate::InstanceOverlay::structure_key_for)
/// (restricted to a sorted predicate list, the form the guard cache uses so
/// that structures differing only in facts a sentence never reads —
/// typically the `IsBind` fact — share one key).  Equal (restricted) fact
/// sets produce equal keys no matter which overlay chain, base/delta split
/// or `Arc` allocation produced them; keys are only comparable when built
/// over the same restriction.  The module docs spell out why the digest is a
/// sound cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructureKey {
    /// First lane sum over the (restricted) facts.
    lane_a: u64,
    /// Second, independently seeded lane sum over the same facts.
    lane_b: u64,
    /// Exact number of (restricted) facts.
    count: u64,
}

const LANE_A_SEED: u64 = 0x243f_6a88_85a3_08d3;
const LANE_B_SEED: u64 = 0x1319_8a2e_0370_7344;

impl From<RelationDigest> for StructureKey {
    fn from(digest: RelationDigest) -> Self {
        StructureKey {
            lane_a: digest.lane_a,
            lane_b: digest.lane_b,
            count: digest.count,
        }
    }
}

/// An order-independent digest of a multiset of facts: two independently
/// seeded 64-bit lane *sums* plus an exact fact count.  Addition commutes,
/// so digests of disjoint fact sets combine with [`RelationDigest::merge`]
/// in any order — which is how an overlay's key is assembled from its base's
/// cached per-relation digests plus its delta's, and why equal fact sets
/// digest equal regardless of representation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RelationDigest {
    lane_a: u64,
    lane_b: u64,
    count: u64,
}

impl RelationDigest {
    /// Folds one fact into the digest.
    pub(crate) fn add(&mut self, relation: RelId, tuple: &crate::tuple::Tuple) {
        let mut lane_a = FxHasher::seeded(LANE_A_SEED);
        let mut lane_b = FxHasher::seeded(LANE_B_SEED);
        relation.hash(&mut lane_a);
        tuple.hash(&mut lane_a);
        relation.hash(&mut lane_b);
        tuple.hash(&mut lane_b);
        self.lane_a = self.lane_a.wrapping_add(lane_a.finish());
        self.lane_b = self.lane_b.wrapping_add(lane_b.finish());
        self.count += 1;
    }

    /// Combines the digest of a disjoint fact set into this one.
    pub(crate) fn merge(&mut self, other: RelationDigest) {
        self.lane_a = self.lane_a.wrapping_add(other.lane_a);
        self.lane_b = self.lane_b.wrapping_add(other.lane_b);
        self.count += other.count;
    }
}

/// Hit/miss counters of a [`GuardCache`].
///
/// The invariant the regression tests lean on: `hits + misses` equals the
/// number of guard consults, whether caching is enabled or not (a disabled
/// cache records every consult as a miss) — so a cached and an uncached run
/// of the same search agree on the total, and a silently dead cache shows up
/// as `hits == 0` instead of just benching flat.
///
/// With more than one worker thread the split between hits and misses can
/// vary run to run (two workers may race to evaluate the same key); the
/// *total* and every verdict stay deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardCacheStats {
    /// Consults answered from the cache.
    pub hits: u64,
    /// Consults that had to evaluate the sentence (including every consult
    /// of a disabled cache).
    pub misses: u64,
}

impl GuardCacheStats {
    /// Total number of guard consults.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Guard structures with fewer facts than this are evaluated directly even
/// when the cache is enabled: for a handful of tuples the homomorphism
/// search is cheaper than fingerprinting the delta and probing a shard.
/// The search oracles decide this *once per expanded state* through
/// [`GuardCache::memoize_gate`] (the per-state transition-structure base
/// bounds every candidate structure of that state) and pass the verdict as
/// the `memoize` flag of [`crate::CompiledSentence::holds_cached`].
/// Mirrors [`crate::index::INDEX_CUTOFF`]; never affects verdicts, only
/// which code path produces them.
pub const GUARD_CACHE_CUTOFF: usize = 16;

/// Number of shards; must be a power of two.
const SHARDS: usize = 16;

type Shard = RwLock<HashMap<(u32, StructureKey), bool, BuildHasherDefault<FxHasher>>>;

/// The verdict maps shared by every handle of one cache (see
/// [`GuardCache::share`]).
#[derive(Debug)]
struct SharedCache {
    enabled: bool,
    /// Initialised on the first probe: searches whose states all sit below
    /// the consumers' size cutoff (or that run with the cache disabled)
    /// never pay for the shard maps — `GuardCache::new` is in every
    /// search's setup path, including µs-scale ones.
    shards: OnceLock<Vec<Shard>>,
}

/// A sharded guard-verdict cache: `(sentence id, StructureKey) → bool`,
/// shared by all worker threads of one search.
///
/// Created per search (one per `BoundedSearcher` run, one per emptiness
/// check shared across its chains, one per batch shared across all its
/// properties) and dropped with it — keys are content-addressed (see the
/// module docs), so the cache holds verdict maps only and its memory is
/// proportional to the number of *distinct* structures decided, reclaimed
/// when the search returns.
///
/// A cache value is a *handle*: [`GuardCache::share`] returns a second
/// handle over the same verdict maps and pin table but with fresh hit/miss
/// counters, which is how a batched search gives every property its own
/// consult accounting while all properties share one memo table.
///
/// Whether the cache actually caches is decided at construction
/// ([`GuardCache::with_enabled`] composed with the process-wide
/// [`guard_cache_enabled`] override); a disabled cache only counts consults
/// (all as misses), so hit/miss totals stay comparable across modes.
#[derive(Debug)]
pub struct GuardCache {
    shared: Arc<SharedCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for GuardCache {
    fn default() -> Self {
        GuardCache::new()
    }
}

impl GuardCache {
    /// Creates an empty, enabled cache (subject to the process-wide
    /// [`guard_cache_enabled`] override).
    #[must_use]
    pub fn new() -> Self {
        GuardCache::with_enabled(true)
    }

    /// Creates an empty cache.  The effective mode is `enabled` composed
    /// with the process-wide [`guard_cache_enabled`] override — the search
    /// front-ends pass `!disable_guard_cache` from their engine config here,
    /// so the `ACCLTL_DISABLE_GUARD_CACHE` variable (read once by
    /// `EngineConfig::from_env`) and the programmatic override both apply.
    #[must_use]
    pub fn with_enabled(enabled: bool) -> Self {
        GuardCache {
            shared: Arc::new(SharedCache {
                enabled: enabled && guard_cache_enabled(),
                shards: OnceLock::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A second handle over the same verdict maps, with fresh hit/miss
    /// counters.  Entries inserted through any handle are visible
    /// to all of them; each handle's [`GuardCache::stats`] only counts its
    /// own consults.
    #[must_use]
    pub fn share(&self) -> GuardCache {
        GuardCache {
            shared: Arc::clone(&self.shared),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// True if this cache memoizes (false: it only counts consults).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.shared.enabled
    }

    /// The per-state memoization gate shared by the search oracles: decides
    /// whether candidates over `base` should be memoized — the cache is
    /// enabled and the base holds at least [`GUARD_CACHE_CUTOFF`] facts
    /// (below that, a homomorphism search beats a digest-and-probe).
    /// Called once per expanded state from the oracles' `prepare`, so the
    /// per-consult fast path stays a branch; the returned flag is the
    /// `memoize` argument of
    /// [`crate::CompiledSentence::holds_cached`].  Purely a size/enablement
    /// gate: content-addressed keys need no base pinning.
    #[must_use]
    pub fn memoize_gate(&self, base: &Instance) -> bool {
        self.shared.enabled && base.fact_count() >= GUARD_CACHE_CUTOFF
    }

    fn shard(&self, sentence: u32, key: &StructureKey) -> &Shard {
        let shards = self
            .shared
            .shards
            .get_or_init(|| (0..SHARDS).map(|_| Shard::default()).collect());
        let mut hasher = FxHasher::seeded(LANE_A_SEED);
        sentence.hash(&mut hasher);
        key.hash(&mut hasher);
        &shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Looks up a memoized verdict, counting the consult as a hit or a miss.
    #[must_use]
    pub fn lookup(&self, sentence: u32, key: &StructureKey) -> Option<bool> {
        let verdict = self
            .shard(sentence, key)
            .read()
            .expect("guard cache shard poisoned")
            .get(&(sentence, *key))
            .copied();
        match verdict {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        // One relaxed load when tracing is off — the consult fast path
        // stays branch-per-consult, as the cache's own counters are.
        trace::event(
            "guard_cache.consult",
            &[
                ("sentence", u64::from(sentence)),
                ("hit", u64::from(verdict.is_some())),
            ],
        );
        verdict
    }

    /// Memoizes a verdict (the consult was already counted by the
    /// preceding [`GuardCache::lookup`] miss).  Racing inserts of the same
    /// key are benign: evaluation is deterministic, so both store the same
    /// verdict.
    pub fn insert(&self, sentence: u32, key: StructureKey, verdict: bool) {
        self.shard(sentence, &key)
            .write()
            .expect("guard cache shard poisoned")
            .insert((sentence, key), verdict);
    }

    /// Counts a consult that bypassed the cache (cache disabled, or the view
    /// cannot produce a key), as a miss — keeping consult totals comparable
    /// between cached and uncached runs.
    pub fn note_uncached(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        trace::event("guard_cache.consult", &[("uncached", 1), ("hit", 0)]);
    }

    /// The hit/miss counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> GuardCacheStats {
        GuardCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide structural sentence-id registry: equal (closed) formulas
/// get equal ids, so sentences compiled independently — e.g. the same guard
/// on many automaton transitions — share cache entries.
pub(crate) fn sentence_cache_id(closed: &PosFormula) -> u32 {
    static REGISTRY: OnceLock<Mutex<HashMap<PosFormula, u32>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut registry = registry.lock().expect("sentence id registry poisoned");
    let next = u32::try_from(registry.len()).expect("sentence id overflow");
    *registry.entry(closed.clone()).or_insert(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::InstanceOverlay;
    use crate::tuple;

    fn base() -> Arc<Instance> {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        Arc::new(inst)
    }

    #[test]
    fn keys_separate_deltas_and_share_restricted_ones() {
        let shared = base();
        let mut x = InstanceOverlay::new(shared.clone());
        let mut y = InstanceOverlay::new(shared.clone());
        assert_eq!(x.structure_key(), y.structure_key());
        x.push_fact("S", tuple![1]);
        assert_ne!(x.structure_key(), y.structure_key());
        y.push_fact("S", tuple![2]);
        assert_ne!(x.structure_key(), y.structure_key());

        // Restricted to a predicate neither delta touches, the keys agree.
        let only_r = [RelId::new("R")];
        assert_eq!(x.structure_key_for(&only_r), y.structure_key_for(&only_r));
        // Restricted to the differing predicate, they do not.
        let only_s = [RelId::new("S")];
        assert_ne!(x.structure_key_for(&only_s), y.structure_key_for(&only_s));
    }

    #[test]
    fn keys_are_content_addressed_across_allocations() {
        let a = InstanceOverlay::new(base());
        let b = InstanceOverlay::new(base());
        // Equal fact sets, distinct allocations: the digest is per-fact-set,
        // not per-allocation.
        assert_eq!(a.structure_key(), b.structure_key());
        let mut c = InstanceOverlay::new(base());
        c.push_fact("S", tuple![1]);
        assert_ne!(a.structure_key(), c.structure_key());
    }

    #[test]
    fn keys_ignore_how_facts_split_between_base_and_delta() {
        let mut full = Instance::new();
        full.add_fact("R", tuple!["a", "b"]);
        full.add_fact("S", tuple![1]);
        // Chain A: everything in the base, empty delta.
        let a = InstanceOverlay::new(Arc::new(full.clone()));
        // Chain B: the base holds R only, the delta pushes S.
        let mut b = InstanceOverlay::new(base());
        b.push_fact("S", tuple![1]);
        assert_eq!(a.materialize(), b.materialize());
        assert_eq!(a.structure_key(), b.structure_key());
        let rels = {
            let mut rels = [RelId::new("R"), RelId::new("S")];
            rels.sort_unstable();
            rels
        };
        assert_eq!(a.structure_key_for(&rels), b.structure_key_for(&rels));
    }

    #[test]
    fn cache_round_trips_verdicts_and_counts_consults() {
        let cache = GuardCache::new();
        assert!(cache.enabled());
        let overlay = InstanceOverlay::new(base());
        let key = overlay.structure_key();
        assert_eq!(cache.lookup(7, &key), None);
        cache.insert(7, key, true);
        assert_eq!(cache.lookup(7, &key), Some(true));
        // A different sentence id misses on the same structure.
        assert_eq!(cache.lookup(8, &key), None);
        cache.note_uncached();
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.total(), 4);
    }

    #[test]
    fn shared_handles_see_one_map_but_count_their_own_consults() {
        let root = GuardCache::new();
        let handle = root.share();
        let overlay = InstanceOverlay::new(base());
        let key = overlay.structure_key();
        assert_eq!(root.lookup(3, &key), None);
        root.insert(3, key, true);
        // The entry is visible through the other handle...
        assert_eq!(handle.lookup(3, &key), Some(true));
        // ...but each handle's counters only reflect its own consults.
        assert_eq!(root.stats(), GuardCacheStats { hits: 0, misses: 1 });
        assert_eq!(handle.stats(), GuardCacheStats { hits: 1, misses: 0 });
    }

    #[test]
    fn disabled_at_construction_never_memoizes() {
        let cache = GuardCache::with_enabled(false);
        assert!(!cache.enabled());
        assert!(!cache.memoize_gate(&base()));
        // Shared handles inherit the mode.
        assert!(!cache.share().enabled());
    }

    #[test]
    fn memoize_gate_requires_enough_facts() {
        let cache = GuardCache::new();
        let mut small = Instance::new();
        small.add_fact("R", tuple![0]);
        assert!(!cache.memoize_gate(&small));
        let mut big = Instance::new();
        for i in 0..GUARD_CACHE_CUTOFF {
            big.add_fact("R", tuple![i as i64]);
        }
        assert!(cache.memoize_gate(&big));
    }

    #[test]
    fn distinct_fact_sets_get_distinct_keys() {
        let mut keys = std::collections::HashSet::new();
        for i in 0..64 {
            let mut inst = Instance::new();
            inst.add_fact("R", tuple![i]);
            let overlay = InstanceOverlay::new(Arc::new(inst));
            // Distinct contents digest apart (up to two-lane collision),
            // even though allocations come and go.
            assert!(keys.insert(overlay.structure_key()));
        }
    }

    #[test]
    fn sentence_ids_are_structural() {
        let f = PosFormula::exists(
            vec!["x"],
            PosFormula::atom(crate::atom::Atom::new(
                RelId::new("R"),
                vec![crate::term::Term::var("x")],
            )),
        );
        let g = f.clone();
        assert_eq!(sentence_cache_id(&f), sentence_cache_id(&g));
        let other = PosFormula::True;
        assert_ne!(sentence_cache_id(&f), sentence_cache_id(&other));
    }
}
