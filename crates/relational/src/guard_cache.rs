//! Guard-verdict memoization over structure fingerprints.
//!
//! The bounded decision procedures spend almost all their time re-deciding
//! the same guard sentences: within one frontier layer the candidate
//! transition structures share a per-state base and differ only in a tiny
//! delta — often only in the `IsBind` fact, which most guards never mention.
//! Yet every `CompiledSentence::holds` call re-runs a full homomorphism
//! search.  This module supplies the two pieces that turn those repeats into
//! hash lookups:
//!
//! * [`StructureKey`] — a cheap, `Copy` fingerprint of an
//!   [`InstanceOverlay`](crate::InstanceOverlay)-shaped structure: the
//!   address of the `Arc`-shared base plus a canonical 128-bit hash of the
//!   (sorted) delta facts, optionally *restricted to the predicates a
//!   sentence mentions* so structures that differ only in irrelevant facts
//!   share one key;
//! * [`GuardCache`] — a sharded `(sentence id, StructureKey) → verdict` map
//!   shared by all of a search's worker threads, with hit/miss counters for
//!   benchmarking and regression tests.
//!
//! Consumers go through
//! [`CompiledSentence::holds_cached`](crate::CompiledSentence::holds_cached),
//! which consults the cache before any homomorphism search and falls back to
//! the uncached path — with byte-identical verdicts by construction — when
//! the cache is disabled ([`DISABLE_GUARD_CACHE_ENV_VAR`], mirroring the
//! `ACCLTL_DISABLE_INDEXES` contract of [`crate::index`]) or when the view
//! cannot produce a key.
//!
//! # Why base-pointer + delta-hash is a sound cache key
//!
//! A verdict may be replayed for a key only if the keyed structures are
//! guaranteed to hold the same facts (restricted to the sentence's
//! predicates).  Three ingredients make the fingerprint sound:
//!
//! 1. **Copy-on-write bases are immutable once shared.**  An overlay's base
//!    sits behind an `Arc` and the overlay only ever *adds* facts to its own
//!    delta; no code path mutates a base once it is shared (that is the
//!    overlay contract of [`crate::overlay`]).  So equal base *addresses*
//!    imply equal base fact sets — as long as the allocation is still alive.
//! 2. **The cache pins every base it has seen.**  [`GuardCache::pin_base`]
//!    retains a clone of the `Arc` for the cache's lifetime, so a base
//!    address can never be freed and reused by a different instance while
//!    entries fingerprinted against it are replayable (and `Arc::get_mut` on
//!    a pinned base fails, closing the one mutation loophole).  The cost is
//!    that a cache's memory is proportional to the number of pinned bases —
//!    which is why caches are created per search and dropped with it.
//! 3. **The delta hash is canonical and collision-resistant in practice.**
//!    Delta facts are hashed in their sorted iteration order into two
//!    independently seeded 64-bit lanes plus a fact count.  Two different
//!    restricted deltas colliding requires defeating both lanes at once
//!    (~2⁻¹²⁸); the differential harness (`tests/guard_cache_props.rs`) and
//!    the CI smoke diff cached against uncached output to keep the whole
//!    construction honest.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::index::FxHasher;
use crate::instance::Instance;
use crate::symbols::RelId;
use crate::ucq::PosFormula;

/// Environment variable disabling the guard-verdict cache when set to `1` —
/// every sentence evaluation falls back to the uncached path, which produces
/// byte-identical verdicts, witnesses and budget accounting (CI diffs the
/// search examples both ways, mirroring `ACCLTL_DISABLE_INDEXES`).
///
/// The variable is *read* in exactly one place: `EngineConfig::from_env` in
/// `accltl-paths`, which feeds the per-search `disable_guard_cache` flag the
/// search front-ends pass to [`GuardCache::with_enabled`].  This module only
/// defines the name and the process-wide [`set_guard_cache_enabled`]
/// override used by tests and benches.
pub const DISABLE_GUARD_CACHE_ENV_VAR: &str = "ACCLTL_DISABLE_GUARD_CACHE";

fn cache_override() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

/// True if guard-verdict caching is in use (the default); flipped by
/// [`set_guard_cache_enabled`].
#[must_use]
pub fn guard_cache_enabled() -> bool {
    !cache_override().load(Ordering::Relaxed)
}

/// Process-wide override of [`guard_cache_enabled`], for A/B comparisons in
/// tests and benches.  Cached and uncached evaluation produce identical
/// verdicts by contract, so flipping this mid-run changes performance paths
/// only, never answers.  The flag is sampled when a [`GuardCache`] is
/// created, so a cache in flight keeps its mode.
pub fn set_guard_cache_enabled(enabled: bool) {
    cache_override().store(!enabled, Ordering::Relaxed);
}

/// A cheap fingerprint of an overlay-shaped structure: the address of the
/// `Arc`-shared base plus a canonical two-lane hash of the delta facts.
///
/// Produced by
/// [`InstanceOverlay::structure_key`](crate::InstanceOverlay::structure_key)
/// (full delta) and
/// [`InstanceOverlay::structure_key_for`](crate::InstanceOverlay::structure_key_for)
/// (delta restricted to a sorted predicate list, the form the guard cache
/// uses so that structures differing only in facts a sentence never reads —
/// typically the `IsBind` fact — share one key).  Keys are only comparable
/// when built over the same base kind and the same restriction; the module
/// docs spell out why the combination is a sound cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructureKey {
    /// Address of the shared base instance (pinned by the consulted
    /// [`GuardCache`] so it cannot be freed and reused).
    base: usize,
    /// First hash lane over the (restricted) delta facts.
    lane_a: u64,
    /// Second, independently seeded hash lane over the same facts.
    lane_b: u64,
}

const LANE_A_SEED: u64 = 0x243f_6a88_85a3_08d3;
const LANE_B_SEED: u64 = 0x1319_8a2e_0370_7344;

impl StructureKey {
    /// Fingerprints `delta` over a base at address `base`.  When
    /// `relations` is given, only facts of those relations are hashed (the
    /// list must be sorted and deduplicated for keys to be canonical).
    pub(crate) fn fingerprint(base: usize, delta: &Instance, relations: Option<&[RelId]>) -> Self {
        let mut lane_a = FxHasher::seeded(LANE_A_SEED);
        let mut lane_b = FxHasher::seeded(LANE_B_SEED);
        let mut count = 0u64;
        {
            let mut hash_fact = |rel: RelId, tuple: &crate::tuple::Tuple| {
                rel.hash(&mut lane_a);
                tuple.hash(&mut lane_a);
                rel.hash(&mut lane_b);
                tuple.hash(&mut lane_b);
                count += 1;
            };
            match relations {
                None => {
                    for (rel, tuple) in delta.facts() {
                        hash_fact(rel, tuple);
                    }
                }
                Some(relations) => {
                    for &rel in relations {
                        for tuple in delta.tuples(rel) {
                            hash_fact(rel, tuple);
                        }
                    }
                }
            }
        }
        lane_a.write_u64(count);
        lane_b.write_u64(count);
        StructureKey {
            base,
            lane_a: lane_a.finish(),
            lane_b: lane_b.finish(),
        }
    }
}

/// Hit/miss counters of a [`GuardCache`].
///
/// The invariant the regression tests lean on: `hits + misses` equals the
/// number of guard consults, whether caching is enabled or not (a disabled
/// cache records every consult as a miss) — so a cached and an uncached run
/// of the same search agree on the total, and a silently dead cache shows up
/// as `hits == 0` instead of just benching flat.
///
/// With more than one worker thread the split between hits and misses can
/// vary run to run (two workers may race to evaluate the same key); the
/// *total* and every verdict stay deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardCacheStats {
    /// Consults answered from the cache.
    pub hits: u64,
    /// Consults that had to evaluate the sentence (including every consult
    /// of a disabled cache).
    pub misses: u64,
}

impl GuardCacheStats {
    /// Total number of guard consults.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Guard structures with fewer facts than this are evaluated directly even
/// when the cache is enabled: for a handful of tuples the homomorphism
/// search is cheaper than fingerprinting the delta and probing a shard.
/// The search oracles decide this *once per expanded state* through
/// [`GuardCache::gate_and_pin`] (the per-state transition-structure base
/// bounds every candidate structure of that state) and pass the verdict as
/// the `memoize` flag of [`crate::CompiledSentence::holds_cached`].
/// Mirrors [`crate::index::INDEX_CUTOFF`]; never affects verdicts, only
/// which code path produces them.
pub const GUARD_CACHE_CUTOFF: usize = 16;

/// Number of shards; must be a power of two.
const SHARDS: usize = 16;

type Shard = RwLock<HashMap<(u32, StructureKey), bool, BuildHasherDefault<FxHasher>>>;

/// The verdict maps and pin table shared by every handle of one cache (see
/// [`GuardCache::share`]).
#[derive(Debug)]
struct SharedCache {
    enabled: bool,
    /// Initialised on the first probe: searches whose states all sit below
    /// the consumers' size cutoff (or that run with the cache disabled)
    /// never pay for the shard maps — `GuardCache::new` is in every
    /// search's setup path, including µs-scale ones.
    shards: OnceLock<Vec<Shard>>,
    /// Base address → retained `Arc`, keeping every fingerprinted base alive
    /// (and thus its address unique) for the cache's lifetime.
    pinned: Mutex<HashMap<usize, Arc<Instance>, BuildHasherDefault<FxHasher>>>,
}

/// A sharded guard-verdict cache: `(sentence id, StructureKey) → bool`,
/// shared by all worker threads of one search.
///
/// Created per search (one per `BoundedSearcher` run, one per emptiness
/// check shared across its chains, one per batch shared across all its
/// properties) and dropped with it — the cache pins every base `Arc` it is
/// told about (see the module docs), so its memory is proportional to the
/// number of expanded search states times the configuration size, reclaimed
/// when the search returns.
///
/// A cache value is a *handle*: [`GuardCache::share`] returns a second
/// handle over the same verdict maps and pin table but with fresh hit/miss
/// counters, which is how a batched search gives every property its own
/// consult accounting while all properties share one memo table.
///
/// Whether the cache actually caches is decided at construction
/// ([`GuardCache::with_enabled`] composed with the process-wide
/// [`guard_cache_enabled`] override); a disabled cache only counts consults
/// (all as misses), so hit/miss totals stay comparable across modes.
#[derive(Debug)]
pub struct GuardCache {
    shared: Arc<SharedCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for GuardCache {
    fn default() -> Self {
        GuardCache::new()
    }
}

impl GuardCache {
    /// Creates an empty, enabled cache (subject to the process-wide
    /// [`guard_cache_enabled`] override).
    #[must_use]
    pub fn new() -> Self {
        GuardCache::with_enabled(true)
    }

    /// Creates an empty cache.  The effective mode is `enabled` composed
    /// with the process-wide [`guard_cache_enabled`] override — the search
    /// front-ends pass `!disable_guard_cache` from their engine config here,
    /// so the `ACCLTL_DISABLE_GUARD_CACHE` variable (read once by
    /// `EngineConfig::from_env`) and the programmatic override both apply.
    #[must_use]
    pub fn with_enabled(enabled: bool) -> Self {
        GuardCache {
            shared: Arc::new(SharedCache {
                enabled: enabled && guard_cache_enabled(),
                shards: OnceLock::new(),
                pinned: Mutex::default(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A second handle over the same verdict maps and pin table, with fresh
    /// hit/miss counters.  Entries inserted through any handle are visible
    /// to all of them; each handle's [`GuardCache::stats`] only counts its
    /// own consults.
    #[must_use]
    pub fn share(&self) -> GuardCache {
        GuardCache {
            shared: Arc::clone(&self.shared),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// True if this cache memoizes (false: it only counts consults).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.shared.enabled
    }

    /// The per-state memoization gate shared by the search oracles: decides
    /// whether candidates over `base` should be memoized (the cache is
    /// enabled and the base holds at least [`GUARD_CACHE_CUTOFF`] facts —
    /// below that, a homomorphism search beats a fingerprint-and-probe) and
    /// pins the base when they should.  Called once per expanded state from
    /// the oracles' `prepare`, so the per-consult fast path stays a branch;
    /// the returned flag is the `memoize` argument of
    /// [`crate::CompiledSentence::holds_cached`].
    #[must_use]
    pub fn gate_and_pin(&self, base: &Arc<Instance>) -> bool {
        let memoize = self.shared.enabled && base.fact_count() >= GUARD_CACHE_CUTOFF;
        if memoize {
            self.pin_base(base);
        }
        memoize
    }

    /// Pins a base instance for the cache's lifetime.  Must be called (once
    /// per base; repeats are cheap no-ops) before verdicts fingerprinted
    /// against that base are inserted — the oracles do this in their
    /// per-state `prepare`.
    pub fn pin_base(&self, base: &Arc<Instance>) {
        if !self.shared.enabled {
            return;
        }
        let address = Arc::as_ptr(base) as usize;
        self.shared
            .pinned
            .lock()
            .expect("guard cache pin table poisoned")
            .entry(address)
            .or_insert_with(|| base.clone());
    }

    fn shard(&self, sentence: u32, key: &StructureKey) -> &Shard {
        let shards = self
            .shared
            .shards
            .get_or_init(|| (0..SHARDS).map(|_| Shard::default()).collect());
        let mut hasher = FxHasher::seeded(LANE_A_SEED);
        sentence.hash(&mut hasher);
        key.hash(&mut hasher);
        &shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Looks up a memoized verdict, counting the consult as a hit or a miss.
    #[must_use]
    pub fn lookup(&self, sentence: u32, key: &StructureKey) -> Option<bool> {
        let verdict = self
            .shard(sentence, key)
            .read()
            .expect("guard cache shard poisoned")
            .get(&(sentence, *key))
            .copied();
        match verdict {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        verdict
    }

    /// Memoizes a verdict (the consult was already counted by the
    /// preceding [`GuardCache::lookup`] miss).  Racing inserts of the same
    /// key are benign: evaluation is deterministic, so both store the same
    /// verdict.
    pub fn insert(&self, sentence: u32, key: StructureKey, verdict: bool) {
        self.shard(sentence, &key)
            .write()
            .expect("guard cache shard poisoned")
            .insert((sentence, key), verdict);
    }

    /// Counts a consult that bypassed the cache (cache disabled, or the view
    /// cannot produce a key), as a miss — keeping consult totals comparable
    /// between cached and uncached runs.
    pub fn note_uncached(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// The hit/miss counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> GuardCacheStats {
        GuardCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide structural sentence-id registry: equal (closed) formulas
/// get equal ids, so sentences compiled independently — e.g. the same guard
/// on many automaton transitions — share cache entries.
pub(crate) fn sentence_cache_id(closed: &PosFormula) -> u32 {
    static REGISTRY: OnceLock<Mutex<HashMap<PosFormula, u32>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut registry = registry.lock().expect("sentence id registry poisoned");
    let next = u32::try_from(registry.len()).expect("sentence id overflow");
    *registry.entry(closed.clone()).or_insert(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::InstanceOverlay;
    use crate::tuple;

    fn base() -> Arc<Instance> {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        Arc::new(inst)
    }

    #[test]
    fn keys_separate_deltas_and_share_restricted_ones() {
        let shared = base();
        let mut x = InstanceOverlay::new(shared.clone());
        let mut y = InstanceOverlay::new(shared.clone());
        assert_eq!(x.structure_key(), y.structure_key());
        x.push_fact("S", tuple![1]);
        assert_ne!(x.structure_key(), y.structure_key());
        y.push_fact("S", tuple![2]);
        assert_ne!(x.structure_key(), y.structure_key());

        // Restricted to a predicate neither delta touches, the keys agree.
        let only_r = [RelId::new("R")];
        assert_eq!(x.structure_key_for(&only_r), y.structure_key_for(&only_r));
        // Restricted to the differing predicate, they do not.
        let only_s = [RelId::new("S")];
        assert_ne!(x.structure_key_for(&only_s), y.structure_key_for(&only_s));
    }

    #[test]
    fn keys_distinguish_bases_by_address() {
        let a = InstanceOverlay::new(base());
        let b = InstanceOverlay::new(base());
        // Equal fact sets, distinct allocations: the fingerprint is
        // per-shared-base, not per-fact-set.
        assert_ne!(a.structure_key(), b.structure_key());
    }

    #[test]
    fn cache_round_trips_verdicts_and_counts_consults() {
        let cache = GuardCache::new();
        assert!(cache.enabled());
        let overlay = InstanceOverlay::new(base());
        cache.pin_base(overlay.base());
        let key = overlay.structure_key();
        assert_eq!(cache.lookup(7, &key), None);
        cache.insert(7, key, true);
        assert_eq!(cache.lookup(7, &key), Some(true));
        // A different sentence id misses on the same structure.
        assert_eq!(cache.lookup(8, &key), None);
        cache.note_uncached();
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.total(), 4);
    }

    #[test]
    fn shared_handles_see_one_map_but_count_their_own_consults() {
        let root = GuardCache::new();
        let handle = root.share();
        let overlay = InstanceOverlay::new(base());
        root.pin_base(overlay.base());
        let key = overlay.structure_key();
        assert_eq!(root.lookup(3, &key), None);
        root.insert(3, key, true);
        // The entry is visible through the other handle...
        assert_eq!(handle.lookup(3, &key), Some(true));
        // ...but each handle's counters only reflect its own consults.
        assert_eq!(root.stats(), GuardCacheStats { hits: 0, misses: 1 });
        assert_eq!(handle.stats(), GuardCacheStats { hits: 1, misses: 0 });
    }

    #[test]
    fn disabled_at_construction_never_memoizes() {
        let cache = GuardCache::with_enabled(false);
        assert!(!cache.enabled());
        assert!(!cache.gate_and_pin(&base()));
        // Shared handles inherit the mode.
        assert!(!cache.share().enabled());
    }

    #[test]
    fn pinning_keeps_base_addresses_unique() {
        let cache = GuardCache::new();
        let mut keys = std::collections::HashSet::new();
        for i in 0..64 {
            let mut inst = Instance::new();
            inst.add_fact("R", tuple![i]);
            let arc = Arc::new(inst);
            cache.pin_base(&arc);
            let overlay = InstanceOverlay::new(arc);
            // Addresses of pinned bases are never reused, so every key is
            // fresh even though the `Arc`s are dropped as we go.
            assert!(keys.insert(overlay.structure_key()));
        }
    }

    #[test]
    fn sentence_ids_are_structural() {
        let f = PosFormula::exists(
            vec!["x"],
            PosFormula::atom(crate::atom::Atom::new(
                RelId::new("R"),
                vec![crate::term::Term::var("x")],
            )),
        );
        let g = f.clone();
        assert_eq!(sentence_cache_id(&f), sentence_cache_id(&g));
        let other = PosFormula::True;
        assert_ne!(sentence_cache_id(&f), sentence_cache_id(&other));
    }
}
