//! Tuples of data values.

use std::fmt;

use crate::value::Value;

/// A tuple: an ordered sequence of values, one per relation position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Creates a tuple from a vector of values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// The arity of the tuple.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values of the tuple, in position order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at a 0-based position, if in range.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.0.get(index)
    }

    /// Consumes the tuple and returns its values.
    #[must_use]
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Projects the tuple onto the given 0-based positions, preserving order.
    ///
    /// Positions out of range are silently skipped; callers validate against
    /// the schema before projecting.
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(
            positions
                .iter()
                .filter_map(|&p| self.0.get(p).copied())
                .collect(),
        )
    }

    /// True if the tuple agrees with `other` on all the given 0-based
    /// positions.
    #[must_use]
    pub fn agrees_on(&self, other: &Tuple, positions: &[usize]) -> bool {
        positions
            .iter()
            .all(|&p| self.0.get(p).is_some() && self.0.get(p) == other.0.get(p))
    }

    /// Applies a value substitution to every component of the tuple.
    #[must_use]
    pub fn map_values(&self, f: impl FnMut(&Value) -> Value) -> Tuple {
        Tuple(self.0.iter().map(f).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

/// Convenience macro building a [`Tuple`] from expressions convertible into
/// [`Value`].
///
/// ```
/// use accltl_relational::{tuple, Value};
/// let t = tuple!["Smith", "OX13QD", "Parks Rd", 5551212];
/// assert_eq!(t.arity(), 4);
/// assert_eq!(t.get(3), Some(&Value::Int(5551212)));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_and_accessors_agree() {
        let t = tuple!["a", 1, true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::str("a")));
        assert_eq!(t.get(1), Some(&Value::Int(1)));
        assert_eq!(t.get(2), Some(&Value::Bool(true)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn projection_preserves_order_and_skips_out_of_range() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.project(&[2, 0]), tuple!["c", "a"]);
        assert_eq!(t.project(&[5]), Tuple::default());
    }

    #[test]
    fn agreement_checks_positions() {
        let t1 = tuple!["a", "b", "c"];
        let t2 = tuple!["a", "x", "c"];
        assert!(t1.agrees_on(&t2, &[0, 2]));
        assert!(!t1.agrees_on(&t2, &[1]));
        assert!(!t1.agrees_on(&t2, &[0, 7]));
    }

    #[test]
    fn map_values_applies_substitution() {
        let t = tuple![1, 2];
        let doubled = t.map_values(|v| match v {
            Value::Int(i) => Value::Int(i * 2),
            other => *other,
        });
        assert_eq!(doubled, tuple![2, 4]);
    }

    #[test]
    fn display_is_parenthesised() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, \"a\")");
    }
}
