//! Per-position value indexes: `(relation, position, value) → tuple ids`.
//!
//! Every decision procedure in the workspace — the chase, CQ/UCQ containment,
//! long-term relevance, the bounded `AccLTL` search, A-automaton emptiness —
//! bottoms out in homomorphism enumeration and Datalog fixpoints.  Before
//! this module those inner loops scanned whole relations tuple-at-a-time; now
//! each [`crate::Instance`] lazily builds an [`InstanceIndex`] (one
//! [`RelationIndex`] per relation: a tuple-id arena plus hash posting lists
//! keyed by `(position, value)`) and keeps it incrementally maintained across
//! [`crate::Instance::add_fact`].  [`crate::InstanceOverlay`] layers a
//! delta-side index over the `Arc`-shared base index, so configuration
//! overlays answer indexed lookups without materializing.
//!
//! The index surfaces through three [`crate::InstanceView`] methods —
//! `tuples_matching`, `selectivity` and `tuples_matching_all` — whose default
//! implementations *scan*: any view answers them correctly, and the indexed
//! overrides must produce exactly the same tuples in exactly the same (tuple)
//! order.  That contract is what keeps homomorphism enumeration, Datalog
//! fixpoints and search witnesses byte-identical whether indexes are enabled
//! or not; it is property-tested in `tests/index_props.rs` and CI-enforced by
//! diffing example outputs with [`DISABLE_INDEXES_ENV_VAR`] set.
//!
//! Maintenance is two-sided: [`crate::Instance::add_fact`] inserts into the
//! posting lists and [`crate::Instance::remove_fact`] deletes from them, so
//! the incremental chase can rewrite facts across repair steps without ever
//! rebuilding the index.  Removal leaves the arena slot in place as an
//! unreferenced tombstone (no posting list points at it any more), which
//! keeps every id stable and every binary search valid; tombstones are
//! bounded by the number of insertions, which the chase already budgets.
//!
//! # Scan fallback
//!
//! Setting `ACCLTL_DISABLE_INDEXES=1` (see [`DISABLE_INDEXES_ENV_VAR`])
//! disables index builds and lookups process-wide; every consumer silently
//! falls back to the scanning defaults.  [`ScanView`] offers the same
//! fallback per call site (used by the parity tests and the A/B benches).
//! Relations smaller than [`INDEX_CUTOFF`] are always answered by scanning —
//! for a handful of tuples a scan beats a hash probe, and the searches run on
//! many tiny delta instances.

use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::slice;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::guard_cache::StructureKey;
use crate::overlay::{InstanceView, TupleIter};
use crate::symbols::{IdMap, RelId};
use crate::tuple::Tuple;
use crate::value::Value;

/// A minimal multiply-rotate hasher (the FxHash construction) for the
/// posting maps.  Keys are tiny — a position and a `Copy` [`Value`] — and
/// every selectivity probe in the homomorphism search hashes one, so the
/// default SipHash would eat most of the gain over a small-relation scan.
/// Not DoS-resistant, which is fine for derived per-instance indexes keyed
/// by already-interned values; and never iterated, so the weaker
/// distribution cannot leak into any deterministic output.  Also reused by
/// [`crate::guard_cache`] for its shard maps and (seeded twice, via
/// [`FxHasher::seeded`]) for the two lanes of the `StructureKey` delta
/// fingerprint.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    /// A hasher with a non-zero initial state, so independently seeded
    /// lanes over the same input produce independent hashes.
    pub(crate) fn seeded(seed: u64) -> Self {
        FxHasher { hash: seed }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type PostingMap = HashMap<(u32, Value), Vec<u32>, BuildHasherDefault<FxHasher>>;

/// Environment variable disabling all index builds and lookups when set to
/// `1` — every query falls back to the scanning defaults, which produce
/// byte-identical results (CI diffs the search examples both ways).
///
/// The variable is *read* in exactly one place: `EngineConfig::from_env` in
/// `accltl-paths`, which feeds the per-search `disable_indexes` flag the
/// search oracles honour by wrapping their evaluation views in [`ScanView`].
/// This module only defines the name and the process-wide
/// [`set_indexing_enabled`] override used by tests and benches.
pub const DISABLE_INDEXES_ENV_VAR: &str = "ACCLTL_DISABLE_INDEXES";

/// Relations with fewer tuples than this are answered by scanning even when
/// indexing is enabled: below the cutoff a scan beats hash probing, and the
/// bounded searches evaluate guards against thousands of tiny delta
/// instances whose index would cost more to build than it saves.  The
/// cutoff never affects results, only which code path produces them.
pub const INDEX_CUTOFF: usize = 8;

fn scan_override() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

/// True if per-position indexes are in use (the default); flipped by
/// [`set_indexing_enabled`].
#[must_use]
pub fn indexing_enabled() -> bool {
    !scan_override().load(Ordering::Relaxed)
}

/// Process-wide override of [`indexing_enabled`], for A/B comparisons in
/// tests and benches.  Indexed and scanning evaluation produce identical
/// results by contract, so flipping this mid-run changes performance paths
/// only, never answers.
pub fn set_indexing_enabled(enabled: bool) {
    scan_override().store(!enabled, Ordering::Relaxed);
}

/// Arity summary of one indexed relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ArityShape {
    /// No tuples indexed yet.
    #[default]
    Empty,
    /// Every indexed tuple has this arity.
    Uniform(usize),
    /// Tuples of differing arities are present.
    Mixed,
}

/// The per-relation index: a tuple-id arena plus per-position posting lists.
///
/// Tuple ids are dense indices into the arena, assigned in insertion order.
/// Posting lists are kept sorted by *tuple order* (the arena tuples' `Ord`),
/// so iterating a posting list — or intersecting several — yields tuples in
/// exactly the order a relation scan would, which is what makes indexed and
/// scanning evaluation order-identical.
#[derive(Debug, Clone, Default)]
pub struct RelationIndex {
    arena: Vec<Tuple>,
    postings: PostingMap,
    shape: ArityShape,
    /// Indexed tuples still present (arena length minus removal tombstones).
    live: usize,
    /// Live `(position, value)` posting entries: the sum of live tuples'
    /// arities.  `slots / postings.len()` is the exact average posting-list
    /// length, which [`RelationIndex::discriminating`] compares against the
    /// relation size to decide whether probing beats scanning.
    slots: usize,
    /// Live zero-arity tuples.  The empty tuple owns no posting entry, so
    /// removal cannot locate it through a posting list; it is tracked by
    /// count instead (a tuple set holds at most one).
    nullary: usize,
}

impl RelationIndex {
    /// Indexes one tuple.  The caller guarantees the tuple is not already
    /// present (instances are tuple sets).
    fn insert(&mut self, tuple: Tuple) {
        let RelationIndex {
            arena,
            postings,
            shape,
            live,
            slots,
            nullary,
        } = self;
        *shape = match *shape {
            ArityShape::Empty => ArityShape::Uniform(tuple.arity()),
            ArityShape::Uniform(a) if a == tuple.arity() => ArityShape::Uniform(a),
            _ => ArityShape::Mixed,
        };
        *live += 1;
        *slots += tuple.arity();
        if tuple.arity() == 0 {
            *nullary += 1;
        }
        let id = u32::try_from(arena.len()).expect("relation index arena overflow");
        for (position, value) in tuple.values().iter().enumerate() {
            let position = u32::try_from(position).expect("tuple arity overflow");
            let list = postings.entry((position, *value)).or_default();
            // Keep the list sorted by tuple order.  At build time tuples
            // arrive in ascending order, so this is a push; incremental
            // `add_fact` maintenance pays one binary search.
            let at = list.partition_point(|&existing| arena[existing as usize] < tuple);
            list.insert(at, id);
        }
        arena.push(tuple);
    }

    /// Unindexes one tuple, returning whether it was present.
    ///
    /// The tuple's id is removed from every posting list it appears in; the
    /// arena slot stays behind as an unreferenced tombstone (ids must remain
    /// stable for the other lists' binary searches).  The arity shape is kept
    /// as-is — a conservative summary stays sound under deletion.
    pub(crate) fn remove(&mut self, tuple: &Tuple) -> bool {
        let RelationIndex {
            arena,
            postings,
            live,
            slots,
            nullary,
            ..
        } = self;
        if tuple.arity() == 0 {
            if *nullary == 0 {
                return false;
            }
            *nullary -= 1;
            *live -= 1;
            return true;
        }
        // Locate the arena id through the first position's posting list.
        let first_key = (0u32, tuple.values()[0]);
        let id = {
            let Some(list) = postings.get(&first_key) else {
                return false;
            };
            let Ok(at) = list.binary_search_by(|&j| arena[j as usize].cmp(tuple)) else {
                return false;
            };
            list[at]
        };
        for (position, value) in tuple.values().iter().enumerate() {
            let position = u32::try_from(position).expect("tuple arity overflow");
            let key = (position, *value);
            let mut emptied = false;
            if let Some(list) = postings.get_mut(&key) {
                if let Ok(at) = list.binary_search_by(|&j| arena[j as usize].cmp(tuple)) {
                    debug_assert_eq!(list[at], id, "posting lists agree on tuple ids");
                    list.remove(at);
                }
                emptied = list.is_empty();
            }
            if emptied {
                postings.remove(&key);
            }
        }
        *live -= 1;
        *slots -= tuple.arity();
        true
    }

    /// The number of indexed tuples still present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no tuples are indexed (or all were removed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether this relation's posting lists actually discriminate: probing
    /// pays off only when the average posting list is at most half the
    /// relation (`2·slots ≤ live·keys`).  Wide tuples that differ in few
    /// positions produce near-degenerate lists for which a scan wins; the
    /// adaptive cutoff in `Instance::query_index` consults this to fall back
    /// per relation.  Never affects results, only which path produces them.
    #[must_use]
    pub fn discriminating(&self) -> bool {
        2 * self.slots <= self.live * self.postings.len()
    }

    /// The uniform arity of the indexed tuples, if they all agree.
    #[must_use]
    pub fn uniform_arity(&self) -> Option<usize> {
        match self.shape {
            ArityShape::Uniform(a) => Some(a),
            ArityShape::Empty | ArityShape::Mixed => None,
        }
    }

    /// The number of tuples holding `value` at `position` — an exact
    /// selectivity, not an estimate (posting lists are maintained, not
    /// sampled).
    #[must_use]
    pub fn selectivity(&self, position: usize, value: &Value) -> usize {
        u32::try_from(position)
            .ok()
            .and_then(|p| self.postings.get(&(p, *value)))
            .map_or(0, Vec::len)
    }

    /// The tuples holding `value` at `position`, in tuple order.
    #[must_use]
    pub fn matching(&self, position: usize, value: &Value) -> MatchIter<'_> {
        match u32::try_from(position)
            .ok()
            .and_then(|p| self.postings.get(&(p, *value)))
        {
            Some(ids) => MatchIter::Postings(PostingMatches {
                arena: &self.arena,
                ids: ids.iter(),
            }),
            None => MatchIter::Empty,
        }
    }

    /// The tuples matching *every* `(position, value)` pair, in tuple order:
    /// the shortest posting list drives, the others are probed by binary
    /// search on tuple order.
    ///
    /// `bound` must be non-empty: the arena holds tuples in insertion order,
    /// so an unconstrained enumeration cannot be answered from the index —
    /// use the owning view's relation scan (`tuples_of`) instead, as the
    /// [`crate::InstanceView::tuples_matching_all`] implementations do.
    #[must_use]
    pub fn matching_all(&self, bound: &[(usize, Value)]) -> MatchIter<'_> {
        debug_assert!(
            !bound.is_empty(),
            "matching_all needs at least one (position, value) constraint; \
             scan the relation for unconstrained enumeration"
        );
        let mut lists: Vec<&[u32]> = Vec::with_capacity(bound.len());
        for (position, value) in bound {
            match u32::try_from(*position)
                .ok()
                .and_then(|p| self.postings.get(&(p, *value)))
            {
                Some(list) => lists.push(list),
                None => return MatchIter::Empty,
            }
        }
        let Some(driver_at) = (0..lists.len()).min_by_key(|&i| lists[i].len()) else {
            return MatchIter::Empty;
        };
        let driver = lists.swap_remove(driver_at);
        if lists.is_empty() {
            return MatchIter::Postings(PostingMatches {
                arena: &self.arena,
                ids: driver.iter(),
            });
        }
        MatchIter::Intersect(IntersectMatches {
            arena: &self.arena,
            driver: driver.iter(),
            others: lists,
        })
    }
}

/// The whole-instance index: one [`RelationIndex`] per relation, keyed by
/// interned relation id.
#[derive(Debug, Clone, Default)]
pub struct InstanceIndex {
    relations: IdMap<RelationIndex>,
}

impl InstanceIndex {
    /// Builds the index from the instance's name-sorted relation slots.
    pub(crate) fn build(entries: &[(RelId, BTreeSet<Tuple>)]) -> Self {
        static INDEX_BUILDS: accltl_obs::metrics::LazyCounter =
            accltl_obs::metrics::LazyCounter::new("index.builds");
        static INDEX_TUPLES: accltl_obs::metrics::LazyCounter =
            accltl_obs::metrics::LazyCounter::new("index.tuples");
        let tuple_count: usize = entries.iter().map(|(_, tuples)| tuples.len()).sum();
        let _build_span = accltl_obs::trace::span_fields(
            "index.build",
            &[
                ("relations", entries.len() as u64),
                ("tuples", tuple_count as u64),
            ],
        );
        INDEX_BUILDS.add(1);
        INDEX_TUPLES.add(tuple_count as u64);
        let mut relations = IdMap::new();
        for (rel, tuples) in entries {
            let mut index = RelationIndex::default();
            for tuple in tuples {
                index.insert(tuple.clone());
            }
            relations.insert(rel.id(), index);
        }
        InstanceIndex { relations }
    }

    /// The index of one relation, if any tuples were indexed for it.
    #[must_use]
    pub fn relation(&self, relation: RelId) -> Option<&RelationIndex> {
        self.relations.get(relation.id())
    }

    /// Incremental maintenance: indexes one newly inserted fact.
    pub(crate) fn insert_fact(&mut self, relation: RelId, tuple: Tuple) {
        match self.relations.get_mut(relation.id()) {
            Some(index) => index.insert(tuple),
            None => {
                let mut index = RelationIndex::default();
                index.insert(tuple);
                self.relations.insert(relation.id(), index);
            }
        }
    }

    /// Incremental maintenance: unindexes one removed fact.
    pub(crate) fn remove_fact(&mut self, relation: RelId, tuple: &Tuple) {
        if let Some(index) = self.relations.get_mut(relation.id()) {
            index.remove(tuple);
        }
    }
}

/// An iterator over the tuples of one relation that match a set of
/// `(position, value)` constraints, always in tuple order.
///
/// Produced by [`crate::InstanceView::tuples_matching`] and friends.  The
/// scanning variants and the posting-list variants yield identical sequences
/// by construction; overlays merge a base and a delta stream.
#[derive(Debug, Clone)]
pub enum MatchIter<'a> {
    /// No tuple matches.
    Empty,
    /// A relation scan filtered by the bound positions.
    Scan(ScanMatches<'a>),
    /// A single posting list resolved through the arena.
    Postings(PostingMatches<'a>),
    /// An intersection of several posting lists over one arena.
    Intersect(IntersectMatches<'a>),
    /// Two match streams (overlay base and delta) merged in tuple order.
    Merged(Box<MergedMatches<'a>>),
}

impl<'a> MatchIter<'a> {
    /// Every tuple of a relation, unfiltered.
    #[must_use]
    pub fn all(tuples: TupleIter<'a>) -> Self {
        MatchIter::Scan(ScanMatches {
            tuples,
            bound: BoundSpec::All,
        })
    }

    /// A scan filtered on one position (no allocation; the value is copied).
    #[must_use]
    pub fn scan_one(tuples: TupleIter<'a>, position: usize, value: &Value) -> Self {
        MatchIter::Scan(ScanMatches {
            tuples,
            bound: BoundSpec::One(position, *value),
        })
    }

    /// A scan filtered on several positions (borrows the caller's pairs).
    #[must_use]
    pub fn scan_all(tuples: TupleIter<'a>, bound: &'a [(usize, Value)]) -> Self {
        MatchIter::Scan(ScanMatches {
            tuples,
            bound: BoundSpec::Many(bound),
        })
    }

    /// Merges two match streams in tuple order (both inputs are tuple-ordered
    /// and, for well-formed overlays, disjoint).
    #[must_use]
    pub fn merged(left: MatchIter<'a>, right: MatchIter<'a>) -> Self {
        match (left, right) {
            (MatchIter::Empty, other) | (other, MatchIter::Empty) => other,
            (mut left, mut right) => {
                let left_head = left.next();
                let right_head = right.next();
                MatchIter::Merged(Box::new(MergedMatches {
                    left,
                    right,
                    left_head,
                    right_head,
                }))
            }
        }
    }
}

impl<'a> Iterator for MatchIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            MatchIter::Empty => None,
            MatchIter::Scan(scan) => scan.next(),
            MatchIter::Postings(postings) => postings.next(),
            MatchIter::Intersect(intersect) => intersect.next(),
            MatchIter::Merged(merged) => merged.next(),
        }
    }
}

/// The `(position, value)` constraints of a scanning [`MatchIter`].
#[derive(Debug, Clone)]
enum BoundSpec<'a> {
    All,
    One(usize, Value),
    Many(&'a [(usize, Value)]),
}

impl BoundSpec<'_> {
    fn matches(&self, tuple: &Tuple) -> bool {
        match self {
            BoundSpec::All => true,
            BoundSpec::One(position, value) => tuple.get(*position) == Some(value),
            BoundSpec::Many(bound) => bound
                .iter()
                .all(|(position, value)| tuple.get(*position) == Some(value)),
        }
    }
}

/// A filtered relation scan (the index-free fallback).
#[derive(Debug, Clone)]
pub struct ScanMatches<'a> {
    tuples: TupleIter<'a>,
    bound: BoundSpec<'a>,
}

impl<'a> Iterator for ScanMatches<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        self.tuples.by_ref().find(|t| self.bound.matches(t))
    }
}

/// A posting list resolved through its arena, yielding tuples in tuple order.
#[derive(Debug, Clone)]
pub struct PostingMatches<'a> {
    arena: &'a [Tuple],
    ids: slice::Iter<'a, u32>,
}

impl<'a> Iterator for PostingMatches<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        self.ids.next().map(|&id| &self.arena[id as usize])
    }
}

/// An intersection of posting lists: the shortest list drives, membership in
/// the others is checked by binary search on tuple order.
#[derive(Debug, Clone)]
pub struct IntersectMatches<'a> {
    arena: &'a [Tuple],
    driver: slice::Iter<'a, u32>,
    others: Vec<&'a [u32]>,
}

impl<'a> Iterator for IntersectMatches<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        'driver: while let Some(&id) = self.driver.next() {
            let tuple = &self.arena[id as usize];
            for list in &self.others {
                if list
                    .binary_search_by(|&j| self.arena[j as usize].cmp(tuple))
                    .is_err()
                {
                    continue 'driver;
                }
            }
            return Some(tuple);
        }
        None
    }
}

/// Two tuple-ordered match streams merged in tuple order (a tuple appearing
/// in both — which a well-formed overlay never produces — is yielded once).
#[derive(Debug, Clone)]
pub struct MergedMatches<'a> {
    left: MatchIter<'a>,
    right: MatchIter<'a>,
    left_head: Option<&'a Tuple>,
    right_head: Option<&'a Tuple>,
}

impl<'a> Iterator for MergedMatches<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match (self.left_head, self.right_head) {
            (Some(l), Some(r)) => match l.cmp(r) {
                std::cmp::Ordering::Less => {
                    self.left_head = self.left.next();
                    Some(l)
                }
                std::cmp::Ordering::Greater => {
                    self.right_head = self.right.next();
                    Some(r)
                }
                std::cmp::Ordering::Equal => {
                    self.left_head = self.left.next();
                    self.right_head = self.right.next();
                    Some(l)
                }
            },
            (Some(l), None) => {
                self.left_head = self.left.next();
                Some(l)
            }
            (None, Some(r)) => {
                self.right_head = self.right.next();
                Some(r)
            }
            (None, None) => None,
        }
    }
}

/// A view adapter that hides the underlying view's index overrides, forcing
/// the scanning defaults for every lookup.
///
/// Used by the parity property tests and the `index` bench to compare
/// indexed and scan evaluation in one process without touching the global
/// [`set_indexing_enabled`] switch.
#[derive(Debug, Clone, Copy)]
pub struct ScanView<'a, V: InstanceView + ?Sized>(pub &'a V);

impl<V: InstanceView + ?Sized> InstanceView for ScanView<'_, V> {
    fn tuples_of(&self, relation: RelId) -> TupleIter<'_> {
        self.0.tuples_of(relation)
    }

    fn count_of(&self, relation: RelId) -> usize {
        self.0.count_of(relation)
    }

    fn has_fact(&self, relation: RelId, tuple: &Tuple) -> bool {
        self.0.has_fact(relation, tuple)
    }

    fn each_fact(&self, f: &mut dyn FnMut(RelId, &Tuple)) {
        self.0.each_fact(f);
    }

    fn view_active_domain(&self) -> BTreeSet<Value> {
        self.0.view_active_domain()
    }

    fn guard_key(&self, relations: &[RelId]) -> Option<StructureKey> {
        // Guard-verdict fingerprints are index-free, so hiding the index
        // overrides must not also disable guard caching.
        self.0.guard_key(relations)
    }
    // `tuples_matching` / `selectivity` / `tuples_matching_all` /
    // `known_uniform_arity` deliberately keep their scanning defaults.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::tuple;

    fn sample_index() -> RelationIndex {
        let mut index = RelationIndex::default();
        index.insert(tuple!["a", 1]);
        index.insert(tuple!["a", 2]);
        index.insert(tuple!["b", 1]);
        index
    }

    #[test]
    fn postings_are_exact_and_tuple_ordered() {
        let index = sample_index();
        assert_eq!(index.len(), 3);
        assert_eq!(index.uniform_arity(), Some(2));
        assert_eq!(index.selectivity(0, &Value::str("a")), 2);
        assert_eq!(index.selectivity(1, &Value::Int(1)), 2);
        assert_eq!(index.selectivity(1, &Value::Int(9)), 0);
        let hits: Vec<&Tuple> = index.matching(0, &Value::str("a")).collect();
        assert_eq!(hits, vec![&tuple!["a", 1], &tuple!["a", 2]]);
    }

    #[test]
    fn intersection_agrees_with_scan_filter() {
        let index = sample_index();
        let bound = vec![(0, Value::str("a")), (1, Value::Int(1))];
        let hits: Vec<&Tuple> = index.matching_all(&bound).collect();
        assert_eq!(hits, vec![&tuple!["a", 1]]);
        let none = vec![(0, Value::str("b")), (1, Value::Int(2))];
        assert_eq!(index.matching_all(&none).count(), 0);
    }

    #[test]
    fn out_of_order_insert_keeps_posting_lists_tuple_sorted() {
        let mut index = RelationIndex::default();
        index.insert(tuple!["m", 1]);
        index.insert(tuple!["z", 1]);
        // Sorts before both existing tuples.
        index.insert(tuple!["a", 1]);
        let hits: Vec<&Tuple> = index.matching(1, &Value::Int(1)).collect();
        assert_eq!(
            hits,
            vec![&tuple!["a", 1], &tuple!["m", 1], &tuple!["z", 1]]
        );
    }

    #[test]
    fn removal_unindexes_and_reinsertion_reindexes() {
        let mut index = sample_index();
        assert!(index.remove(&tuple!["a", 1]));
        assert!(!index.remove(&tuple!["a", 1]), "second removal is a no-op");
        assert!(!index.remove(&tuple!["q", 9]), "absent tuples report false");
        assert_eq!(index.len(), 2);
        assert_eq!(index.selectivity(0, &Value::str("a")), 1);
        assert_eq!(index.selectivity(1, &Value::Int(1)), 1);
        let hits: Vec<&Tuple> = index.matching(0, &Value::str("a")).collect();
        assert_eq!(hits, vec![&tuple!["a", 2]]);
        // Re-inserting after removal restores the exact posting state.
        index.insert(tuple!["a", 1]);
        assert_eq!(index.len(), 3);
        let hits: Vec<&Tuple> = index.matching(0, &Value::str("a")).collect();
        assert_eq!(hits, vec![&tuple!["a", 1], &tuple!["a", 2]]);
        let bound = vec![(0, Value::str("a")), (1, Value::Int(1))];
        let both: Vec<&Tuple> = index.matching_all(&bound).collect();
        assert_eq!(both, vec![&tuple!["a", 1]]);
    }

    #[test]
    fn nullary_tuples_are_tracked_by_count() {
        let mut index = RelationIndex::default();
        index.insert(Tuple::new(vec![]));
        assert_eq!(index.len(), 1);
        assert!(index.remove(&Tuple::new(vec![])));
        assert!(index.is_empty());
        assert!(!index.remove(&Tuple::new(vec![])));
    }

    #[test]
    fn discrimination_tracks_posting_list_shape() {
        // Distinct values per column: lists are short, probing pays off.
        let mut sharp = RelationIndex::default();
        for i in 0..8i64 {
            sharp.insert(tuple![i, i + 100]);
        }
        assert!(sharp.discriminating());
        // A constant column plus three binary ones: every posting list holds
        // at least half the relation, so scanning wins.
        let mut blunt = RelationIndex::default();
        for i in 0..8i64 {
            blunt.insert(tuple!["x", i & 1, (i >> 1) & 1, (i >> 2) & 1]);
        }
        assert!(!blunt.discriminating());
    }

    #[test]
    fn mixed_arities_report_no_uniform_arity() {
        let mut index = RelationIndex::default();
        assert_eq!(index.uniform_arity(), None);
        index.insert(tuple!["a"]);
        assert_eq!(index.uniform_arity(), Some(1));
        index.insert(tuple!["a", "b"]);
        assert_eq!(index.uniform_arity(), None);
    }

    #[test]
    fn scan_view_matches_indexed_view() {
        let mut inst = Instance::new();
        for i in 0..20i64 {
            inst.add_fact("R", tuple![i % 3, i]);
        }
        let value = Value::Int(1);
        let indexed: Vec<Tuple> = inst
            .tuples_matching("R".into(), 0, &value)
            .cloned()
            .collect();
        let scan = ScanView(&inst);
        let scanned: Vec<Tuple> = scan
            .tuples_matching("R".into(), 0, &value)
            .cloned()
            .collect();
        assert_eq!(indexed, scanned);
        assert_eq!(
            inst.selectivity("R".into(), 0, &value),
            scan.selectivity("R".into(), 0, &value)
        );
    }

    #[test]
    fn merged_streams_interleave_in_tuple_order() {
        let left = sample_index();
        let mut right = RelationIndex::default();
        right.insert(tuple!["a", 0]);
        right.insert(tuple!["c", 7]);
        let merged: Vec<&Tuple> = MatchIter::merged(
            left.matching(0, &Value::str("a")),
            right.matching(0, &Value::str("a")),
        )
        .collect();
        assert_eq!(
            merged,
            vec![&tuple!["a", 0], &tuple!["a", 1], &tuple!["a", 2]]
        );
    }
}
