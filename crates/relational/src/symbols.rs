//! Interned symbols: copyable `u32` ids for relation names, variable names
//! and text constants.
//!
//! Every decision procedure in this workspace — the chase, homomorphism
//! search, bounded witness search, A-automaton product emptiness — is a
//! bounded exponential search whose inner loops compare, hash and copy names
//! constantly.  Heap-allocated `String`s make each of those operations an
//! allocation or a byte-wise comparison; this module replaces them with
//! interned symbols:
//!
//! * [`Sym`] — an interned string (method names, text constants);
//! * [`RelId`] — an interned *relation/predicate* name;
//! * [`VarId`] — an interned *variable* name.
//!
//! All three are `Copy` wrappers around a `u32` into a process-wide,
//! append-only string pool.  Equality and hashing are integer operations;
//! resolving back to `&str` is a thread-local array lookup; `Ord` compares
//! the *resolved strings* (with an id fast path for equality) so that every
//! ordered collection in the workspace iterates in exactly the same
//! lexicographic order as the pre-interning, `String`-keyed representation —
//! determinism across runs is part of the crate contract and must not depend
//! on interning order.
//!
//! # Pool growth
//!
//! The pool is append-only and leaks one copy of each distinct string for
//! the process lifetime, so its size is bounded by the set of distinct names
//! ever *written* (constructors and `add_fact`-style writes intern; read-only
//! lookups go through the non-growing `*Key` traits / [`Sym::try_get`]).
//! Generated scratch names — frozen canonical-database values, the
//! `x′<tag>`-style renames of the Datalog unfolding, the per-disjunct guard
//! renames of the bounded searches — all draw their tags from counters that
//! restart at every call, so repeated analyses of the same objects reuse the
//! same pool entries instead of growing the pool.
//!
//! # Id-space ownership
//!
//! Ids are allocated by the process-wide pool, so a given spelling resolves
//! to the same `Sym` everywhere in the process — symbols can safely cross
//! API boundaries.  *Dense indices* are a different matter: each
//! [`SymbolTable`] (one per `Schema`, extended by `AccessSchema` with its
//! method names, both resolved at build time) numbers **its own** relations
//! and methods `0..n` for use in per-schema dense arrays.  A dense index
//! obtained from one table is meaningless to every other table; always go
//! through the owning table (or carry the `RelId`/`Sym`, which is globally
//! valid) when crossing between schemas.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

/// The process-wide string pool: append-only, ids are dense from zero.
struct Pool {
    lookup: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(Pool {
            lookup: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

thread_local! {
    /// Per-thread mirror of the pool's `strings` vector.  The pool is
    /// append-only, so a stale mirror is never wrong — only short — and is
    /// refreshed from the shared pool on a miss.  This makes `Sym::as_str`
    /// lock-free after the first resolution per (thread, symbol).
    static MIRROR: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn intern(s: &str) -> u32 {
    // Fast path: already interned (read lock only).
    if let Some(&id) = pool().read().expect("symbol pool poisoned").lookup.get(s) {
        return id;
    }
    let mut pool = pool().write().expect("symbol pool poisoned");
    if let Some(&id) = pool.lookup.get(s) {
        return id;
    }
    // Leak exactly one copy per distinct string, for the process lifetime.
    // The pool is bounded by the set of distinct names/constants ever used.
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = u32::try_from(pool.strings.len()).expect("symbol pool overflow");
    pool.strings.push(leaked);
    pool.lookup.insert(leaked, id);
    id
}

fn resolve(id: u32) -> &'static str {
    MIRROR.with(|mirror| {
        let mut mirror = mirror.borrow_mut();
        if (id as usize) >= mirror.len() {
            let pool = pool().read().expect("symbol pool poisoned");
            let known = mirror.len();
            mirror.extend_from_slice(&pool.strings[known..]);
        }
        mirror[id as usize]
    })
}

/// An interned string: a copyable `u32` handle into the process-wide pool.
///
/// `Eq`/`Hash` are integer operations on the id; `Ord` compares the resolved
/// strings (lexicographically, like the `String` representation it replaces)
/// with an id fast path for equality.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Sym(u32);

impl Sym {
    /// Interns a string, returning its symbol.
    #[must_use]
    pub fn new(s: &str) -> Sym {
        Sym(intern(s))
    }

    /// The symbol for `s` if it has been interned before; `None` otherwise.
    /// Useful for read-only lookups that should not grow the pool.
    #[must_use]
    pub fn try_get(s: &str) -> Option<Sym> {
        pool()
            .read()
            .expect("symbol pool poisoned")
            .lookup
            .get(s)
            .copied()
            .map(Sym)
    }

    /// Resolves the symbol to its string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        resolve(self.0)
    }

    /// The raw pool id (dense from zero, process-wide).
    #[must_use]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Self {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym::new(&s)
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Self {
        *s
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

/// A read-only lookup key for [`Sym`]-keyed collections.
///
/// Already-interned ids resolve to themselves for free; string keys resolve
/// through [`Sym::try_get`], so probing a collection for a name that was
/// never interned answers "absent" **without growing the pool** — lookups
/// with attacker- or user-derived strings cannot leak memory.
pub trait SymKey {
    /// The interned symbol, if this key's spelling has been interned.
    fn resolve_sym(&self) -> Option<Sym>;
}

impl SymKey for Sym {
    fn resolve_sym(&self) -> Option<Sym> {
        Some(*self)
    }
}

impl SymKey for &Sym {
    fn resolve_sym(&self) -> Option<Sym> {
        Some(**self)
    }
}

impl SymKey for &str {
    fn resolve_sym(&self) -> Option<Sym> {
        Sym::try_get(self)
    }
}

impl SymKey for &String {
    fn resolve_sym(&self) -> Option<Sym> {
        Sym::try_get(self)
    }
}

impl SymKey for String {
    fn resolve_sym(&self) -> Option<Sym> {
        Sym::try_get(self)
    }
}

/// Declares an interned-name newtype over [`Sym`] with the same surface.
macro_rules! symbol_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(Sym);

        impl $name {
            /// Interns a name.
            #[must_use]
            pub fn new(s: &str) -> Self {
                $name(Sym::new(s))
            }

            /// The id for `s` if interned before, without growing the pool.
            #[must_use]
            pub fn try_get(s: &str) -> Option<Self> {
                Sym::try_get(s).map($name)
            }

            /// Resolves to the underlying name.
            #[must_use]
            pub fn as_str(self) -> &'static str {
                self.0.as_str()
            }

            /// The underlying interned symbol.
            #[must_use]
            pub fn sym(self) -> Sym {
                self.0
            }

            /// The raw pool id.
            #[must_use]
            pub fn id(self) -> u32 {
                self.0.id()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:?}", self.as_str())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }

        impl From<&String> for $name {
            fn from(s: &String) -> Self {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(&s)
            }
        }

        impl From<Sym> for $name {
            fn from(s: Sym) -> Self {
                $name(s)
            }
        }

        impl From<&$name> for $name {
            fn from(s: &$name) -> Self {
                *s
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                self.as_str() == *other
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                self.as_str() == other
            }
        }

        impl PartialEq<$name> for &str {
            fn eq(&self, other: &$name) -> bool {
                *self == other.as_str()
            }
        }
    };
}

symbol_newtype! {
    /// An interned relation (predicate) name.
    RelId
}

symbol_newtype! {
    /// An interned variable name.
    VarId
}

/// A read-only lookup key for [`RelId`]-keyed collections (see [`SymKey`]).
pub trait RelKey {
    /// The interned relation id, if this key's spelling has been interned.
    fn resolve_rel(&self) -> Option<RelId>;
}

impl RelKey for RelId {
    fn resolve_rel(&self) -> Option<RelId> {
        Some(*self)
    }
}

impl RelKey for &RelId {
    fn resolve_rel(&self) -> Option<RelId> {
        Some(**self)
    }
}

impl RelKey for Sym {
    fn resolve_rel(&self) -> Option<RelId> {
        Some(RelId(*self))
    }
}

impl RelKey for &str {
    fn resolve_rel(&self) -> Option<RelId> {
        RelId::try_get(self)
    }
}

impl RelKey for &String {
    fn resolve_rel(&self) -> Option<RelId> {
        RelId::try_get(self)
    }
}

impl RelKey for String {
    fn resolve_rel(&self) -> Option<RelId> {
        RelId::try_get(self)
    }
}

/// A read-only lookup key for [`VarId`]-keyed collections (see [`SymKey`]).
pub trait VarKey {
    /// The interned variable id, if this key's spelling has been interned.
    fn resolve_var(&self) -> Option<VarId>;
}

impl VarKey for VarId {
    fn resolve_var(&self) -> Option<VarId> {
        Some(*self)
    }
}

impl VarKey for &VarId {
    fn resolve_var(&self) -> Option<VarId> {
        Some(**self)
    }
}

impl VarKey for &str {
    fn resolve_var(&self) -> Option<VarId> {
        VarId::try_get(self)
    }
}

impl VarKey for &String {
    fn resolve_var(&self) -> Option<VarId> {
        VarId::try_get(self)
    }
}

impl VarKey for String {
    fn resolve_var(&self) -> Option<VarId> {
        VarId::try_get(self)
    }
}

/// A small, allocation-light map from raw intern ids to values: a vector of
/// `(id, value)` pairs sorted by id, looked up by binary search on `u32`s.
///
/// This is the shared backbone of every precomputed id-keyed table in the
/// workspace — [`SymbolTable`]'s dense indices, the `TransitionVocab`
/// pre/post/IsBind tables, the Datalog Δ-view table — so the
/// insert-at-`Err`-slot logic lives in exactly one place.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdMap<V> {
    entries: Vec<(u32, V)>,
}

impl<V> Default for IdMap<V> {
    fn default() -> Self {
        IdMap {
            entries: Vec::new(),
        }
    }
}

impl<V> IdMap<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        IdMap {
            entries: Vec::new(),
        }
    }

    /// Inserts a value for an id, returning the previous value if present.
    pub fn insert(&mut self, id: u32, value: V) -> Option<V> {
        match self.entries.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(found) => Some(std::mem::replace(&mut self.entries[found].1, value)),
            Err(slot) => {
                self.entries.insert(slot, (id, value));
                None
            }
        }
    }

    /// The value for an id, if present.
    #[must_use]
    pub fn get(&self, id: u32) -> Option<&V> {
        self.entries
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|found| &self.entries[found].1)
    }

    /// Mutable access to the value for an id, if present.
    #[must_use]
    pub fn get_mut(&mut self, id: u32) -> Option<&mut V> {
        self.entries
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|found| &mut self.entries[found].1)
    }

    /// Removes the value for an id, if present.
    pub fn remove(&mut self, id: u32) -> Option<V> {
        match self.entries.binary_search_by_key(&id, |&(k, _)| k) {
            Ok(found) => Some(self.entries.remove(found).1),
            Err(_) => None,
        }
    }

    /// Iterates over the values in id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A schema-owned registry of interned names with *dense local indices*.
///
/// One table lives in each `Schema` (and, extended with access-method names,
/// in each `AccessSchema`); names are resolved into it at build time.  The
/// table numbers its relations and methods `0..n` so hot loops can use plain
/// arrays instead of maps.  Dense indices are meaningful only relative to the
/// table that produced them — see the module docs for the ownership rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    relations: Vec<RelId>,
    /// Raw pool id → dense relation index, [`NO_DENSE_INDEX`] when absent.
    /// A direct array rather than a sorted map: the search inner loops
    /// resolve ids to dense indices on every structure build, and raw ids are
    /// small process-wide integers, so trading a few bytes per unused id for
    /// branch-free O(1) lookups is the right call.
    relation_dense: Vec<u32>,
    methods: Vec<Sym>,
    method_dense: Vec<u32>,
}

/// Sentinel for "this raw id is not registered in the table".
const NO_DENSE_INDEX: u32 = u32::MAX;

fn dense_get(dense: &[u32], id: u32) -> Option<usize> {
    match dense.get(id as usize) {
        Some(&index) if index != NO_DENSE_INDEX => Some(index as usize),
        _ => None,
    }
}

fn dense_set(dense: &mut Vec<u32>, id: u32, index: usize) {
    if dense.len() <= id as usize {
        dense.resize(id as usize + 1, NO_DENSE_INDEX);
    }
    dense[id as usize] = u32::try_from(index).expect("dense index overflow");
}

impl SymbolTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string in the process-wide pool (the table does not need to
    /// own it; this is a convenience so callers holding a table need no other
    /// import).
    #[must_use]
    pub fn intern(&self, s: &str) -> Sym {
        Sym::new(s)
    }

    /// Resolves any symbol back to its string.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &'static str {
        sym.as_str()
    }

    /// Registers a relation, returning its dense index (existing index if the
    /// relation is already registered).
    pub fn add_relation(&mut self, relation: RelId) -> usize {
        if let Some(dense) = dense_get(&self.relation_dense, relation.id()) {
            return dense;
        }
        let dense = self.relations.len();
        self.relations.push(relation);
        dense_set(&mut self.relation_dense, relation.id(), dense);
        dense
    }

    /// Registers an access-method name, returning its dense index.
    pub fn add_method(&mut self, method: Sym) -> usize {
        if let Some(dense) = dense_get(&self.method_dense, method.id()) {
            return dense;
        }
        let dense = self.methods.len();
        self.methods.push(method);
        dense_set(&mut self.method_dense, method.id(), dense);
        dense
    }

    /// The registered relations, in registration (dense-index) order.
    #[must_use]
    pub fn relations(&self) -> &[RelId] {
        &self.relations
    }

    /// The registered method names, in registration (dense-index) order.
    #[must_use]
    pub fn methods(&self) -> &[Sym] {
        &self.methods
    }

    /// The dense index of a relation in this table, if registered.  A direct
    /// array lookup by raw id — constant time, no binary search.
    #[must_use]
    pub fn relation_index(&self, relation: RelId) -> Option<usize> {
        dense_get(&self.relation_dense, relation.id())
    }

    /// The dense index of a method name in this table, if registered.
    #[must_use]
    pub fn method_index(&self, method: Sym) -> Option<usize> {
        dense_get(&self.method_dense, method.id())
    }

    /// Number of registered relations.
    #[must_use]
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Number of registered methods.
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_round_trips_and_dedups() {
        let a = Sym::new("hello");
        let b = Sym::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "hello");
        assert_eq!(a, "hello");
        let c = Sym::new("world");
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order; Ord must still be by string.
        let z = Sym::new("zzz-order-test");
        let a = Sym::new("aaa-order-test");
        assert!(a < z);
        assert!(RelId::from("aaa-order-test") < RelId::from("zzz-order-test"));
    }

    #[test]
    fn try_get_does_not_intern() {
        assert!(Sym::try_get("never-interned-symbol-xyzzy").is_none());
        let s = Sym::new("interned-once-abcde");
        assert_eq!(Sym::try_get("interned-once-abcde"), Some(s));
    }

    #[test]
    fn newtypes_share_the_pool_but_are_distinct_types() {
        let r = RelId::new("Shared");
        let v = VarId::new("Shared");
        assert_eq!(r.sym(), v.sym());
        assert_eq!(r.as_str(), v.as_str());
    }

    #[test]
    fn symbol_table_assigns_dense_indices() {
        let mut table = SymbolTable::new();
        let r = RelId::new("R-table-test");
        let s = RelId::new("S-table-test");
        assert_eq!(table.add_relation(r), 0);
        assert_eq!(table.add_relation(s), 1);
        assert_eq!(table.add_relation(r), 0);
        assert_eq!(table.relation_index(r), Some(0));
        assert_eq!(table.relation_index(s), Some(1));
        assert_eq!(table.relation_index(RelId::new("T-table-test")), None);
        assert_eq!(table.relations(), &[r, s]);
        assert_eq!(table.relation_count(), 2);

        let m = Sym::new("M-table-test");
        assert_eq!(table.add_method(m), 0);
        assert_eq!(table.method_index(m), Some(0));
        assert_eq!(table.method_count(), 1);
    }

    #[test]
    fn resolution_works_across_threads() {
        let sym = Sym::new("cross-thread-symbol");
        let handle = std::thread::spawn(move || sym.as_str().to_owned());
        assert_eq!(handle.join().unwrap(), "cross-thread-symbol");
    }
}
