//! Query containment for conjunctive queries and unions of conjunctive
//! queries.
//!
//! Containment is the workhorse of the paper's decision procedures: the
//! A-automaton emptiness test reduces to containment of a Datalog program in
//! a positive query ([`crate::datalog_containment`]), whose base case is the
//! classical CQ-in-UCQ containment test implemented here via canonical
//! databases (Chandra–Merlin).

use crate::cq::{Assignment, ConjunctiveQuery};
use crate::ucq::UnionOfCqs;

/// True if `q1 ⊑ q2`: every database where `q1` has an answer tuple also has
/// that tuple as an answer of `q2`.
///
/// Both queries must have the same head arity; containment of queries with
/// different arities is vacuously `false`.
#[must_use]
pub fn cq_contained_in_cq(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    cq_contained_in_ucq(q1, &UnionOfCqs::single(q2.clone()))
}

/// True if `q1 ⊑ u`: the conjunctive query is contained in the union of
/// conjunctive queries.
///
/// By the Chandra–Merlin / Sagiv–Yannakakis theorem, `q1 ⊑ u` iff some
/// disjunct of `u` has a homomorphism into the canonical database of `q1`
/// mapping head variables to the frozen head of `q1`.  Constants are handled
/// by freezing them to themselves.
#[must_use]
pub fn cq_contained_in_ucq(q1: &ConjunctiveQuery, u: &UnionOfCqs) -> bool {
    let (canonical, freeze) = q1.canonical_instance();
    u.disjuncts.iter().any(|q2| {
        if q2.head.len() != q1.head.len() {
            return false;
        }
        // The homomorphism must send q2's i-th head variable to the frozen
        // image of q1's i-th head variable.
        let mut initial = Assignment::new();
        for (v2, v1) in q2.head.iter().zip(&q1.head) {
            let Some(frozen) = freeze.get(*v1).copied() else {
                return false;
            };
            // If v2 repeats in the head with conflicting targets, there is no
            // such homomorphism.
            if let Some(previous) = initial.get(*v2) {
                if *previous != frozen {
                    return false;
                }
            }
            initial.insert(*v2, frozen);
        }
        q2.find_homomorphism(&canonical, &initial).is_some()
    })
}

/// True if `u1 ⊑ u2`: every disjunct of `u1` is contained in `u2`.
#[must_use]
pub fn ucq_contained_in_ucq(u1: &UnionOfCqs, u2: &UnionOfCqs) -> bool {
    u1.disjuncts.iter().all(|q| cq_contained_in_ucq(q, u2))
}

/// True if the two UCQs are equivalent (mutual containment).
#[must_use]
pub fn ucq_equivalent(u1: &UnionOfCqs, u2: &UnionOfCqs) -> bool {
    ucq_contained_in_ucq(u1, u2) && ucq_contained_in_ucq(u2, u1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cq};

    #[test]
    fn more_constrained_query_is_contained_in_less_constrained() {
        // Q1(x) :- R(x,y), S(y)  ⊑  Q2(x) :- R(x,y)
        let q1 = cq!([x] <- atom!("R"; x, y), atom!("S"; y));
        let q2 = cq!([x] <- atom!("R"; x, y));
        assert!(cq_contained_in_cq(&q1, &q2));
        assert!(!cq_contained_in_cq(&q2, &q1));
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let q = cq!([x] <- atom!("R"; x, y));
        assert!(cq_contained_in_cq(&q, &q));
        assert!(ucq_equivalent(
            &UnionOfCqs::single(q.clone()),
            &UnionOfCqs::single(q)
        ));
    }

    #[test]
    fn renamed_variables_do_not_matter() {
        let q1 = cq!([a] <- atom!("R"; a, b));
        let q2 = cq!([x] <- atom!("R"; x, y));
        assert!(cq_contained_in_cq(&q1, &q2));
        assert!(cq_contained_in_cq(&q2, &q1));
    }

    #[test]
    fn constants_constrain_containment() {
        // Q1(x) :- R(x, "c")  ⊑  Q2(x) :- R(x, y), but not vice versa.
        let q1 = cq!([x] <- atom!("R"; x, @"c"));
        let q2 = cq!([x] <- atom!("R"; x, y));
        assert!(cq_contained_in_cq(&q1, &q2));
        assert!(!cq_contained_in_cq(&q2, &q1));

        // Containment between queries with different constants fails.
        let q3 = cq!([x] <- atom!("R"; x, @"d"));
        assert!(!cq_contained_in_cq(&q1, &q3));
        assert!(!cq_contained_in_cq(&q3, &q1));
    }

    #[test]
    fn head_mapping_is_respected() {
        // Q1(x, y) :- R(x, y) is not contained in Q2(x, y) :- R(y, x).
        let q1 = cq!([x, y] <- atom!("R"; x, y));
        let q2 = cq!([x, y] <- atom!("R"; y, x));
        assert!(!cq_contained_in_cq(&q1, &q2));
        // But the "swap" query is contained in itself.
        assert!(cq_contained_in_cq(&q2, &q2));
    }

    #[test]
    fn differing_head_arity_is_never_contained() {
        let q1 = cq!([x] <- atom!("R"; x, y));
        let q2 = cq!([x, y] <- atom!("R"; x, y));
        assert!(!cq_contained_in_cq(&q1, &q2));
    }

    #[test]
    fn cq_in_ucq_uses_any_disjunct() {
        let q = cq!([x] <- atom!("S"; x));
        let u = UnionOfCqs::new(vec![cq!([x] <- atom!("R"; x)), cq!([x] <- atom!("S"; x))]);
        assert!(cq_contained_in_ucq(&q, &u));
        let u_without = UnionOfCqs::new(vec![cq!([x] <- atom!("R"; x))]);
        assert!(!cq_contained_in_ucq(&q, &u_without));
    }

    #[test]
    fn ucq_containment_requires_all_disjuncts() {
        let u1 = UnionOfCqs::new(vec![cq!([x] <- atom!("R"; x)), cq!([x] <- atom!("S"; x))]);
        let u2 = UnionOfCqs::new(vec![
            cq!([x] <- atom!("R"; x)),
            cq!([x] <- atom!("S"; x)),
            cq!([x] <- atom!("T"; x)),
        ]);
        assert!(ucq_contained_in_ucq(&u1, &u2));
        assert!(!ucq_contained_in_ucq(&u2, &u1));
    }

    #[test]
    fn boolean_query_containment() {
        let q1 = cq!(<- atom!("R"; x, x));
        let q2 = cq!(<- atom!("R"; x, y));
        assert!(cq_contained_in_cq(&q1, &q2));
        assert!(!cq_contained_in_cq(&q2, &q1));
    }

    #[test]
    fn repeated_head_variable() {
        // Q1(x, x) :- R(x, x) ⊑ Q2(x, y) :- R(x, y); the reverse fails.
        let q1 = ConjunctiveQuery::with_head(vec!["x", "x"], vec![atom!("R"; x, x)]);
        let q2 = cq!([x, y] <- atom!("R"; x, y));
        assert!(cq_contained_in_cq(&q1, &q2));
        assert!(!cq_contained_in_cq(&q2, &q1));
    }

    #[test]
    fn containment_in_empty_union_is_false() {
        let q = cq!([x] <- atom!("R"; x));
        assert!(!cq_contained_in_ucq(&q, &UnionOfCqs::default()));
    }
}
