//! Relation schemas and database schemas.
//!
//! A schema (paper, Section 2) is a set of relations, each mapping positions
//! `1..n_i` to datatypes.  Access methods live one level up, in the
//! `accltl-paths` crate; this module only knows about the purely relational
//! part.
//!
//! Relation names are resolved to interned [`RelId`]s at build time; the
//! schema owns a [`SymbolTable`] assigning its relations dense local indices
//! for per-schema arrays (see the `symbols` module for the ownership rule).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::RelationalError;
use crate::symbols::{RelId, SymbolTable};
use crate::tuple::Tuple;
use crate::value::DataType;
use crate::Result;

/// The schema of a single relation: a name plus a datatype per position.
///
/// Positions are 1-based in the paper; internally we index from 0 and expose
/// helpers that keep the two views consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: RelId,
    column_types: Vec<DataType>,
}

impl RelationSchema {
    /// Creates a relation schema with the given name and column types.
    #[must_use]
    pub fn new(name: impl Into<RelId>, column_types: Vec<DataType>) -> Self {
        Self {
            name: name.into(),
            column_types,
        }
    }

    /// Creates a relation schema whose positions are all of type `Text`.
    ///
    /// The paper's examples (phone directory, dependency gadgets) are
    /// homogeneous, so this is the most common constructor in practice.
    #[must_use]
    pub fn text(name: impl Into<RelId>, arity: usize) -> Self {
        Self::new(name, vec![DataType::Text; arity])
    }

    /// The relation name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The interned relation id.
    #[must_use]
    pub fn rel_id(&self) -> RelId {
        self.name
    }

    /// The arity (number of positions).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.column_types.len()
    }

    /// The declared column types, in position order.
    #[must_use]
    pub fn column_types(&self) -> &[DataType] {
        &self.column_types
    }

    /// Checks that a tuple matches this relation's arity and column types.
    ///
    /// Labelled nulls (see [`crate::value::Value::is_labelled_null`]) are
    /// accepted at any position regardless of the declared type, because the
    /// chase introduces them as typed placeholders.
    pub fn validate_tuple(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name().to_owned(),
                expected: self.arity(),
                found: tuple.arity(),
            });
        }
        for (i, (value, ty)) in tuple.values().iter().zip(&self.column_types).enumerate() {
            if value.is_labelled_null() {
                continue;
            }
            if value.data_type() != *ty {
                return Err(RelationalError::TypeMismatch {
                    relation: self.name().to_owned(),
                    position: i + 1,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, ty) in self.column_types.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ty}")?;
        }
        write!(f, ")")
    }
}

/// A database schema: a collection of named relation schemas.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// Keyed by interned id; iterated in name order (RelId orders by name).
    relations: BTreeMap<RelId, RelationSchema>,
    symbols: SymbolTable,
}

/// Schemas are equal when they declare the same relations; the symbol table's
/// dense indices record registration order, which is bookkeeping, not
/// identity (two schemas built in different orders compare equal, as with the
/// pre-interning `BTreeMap`-only representation).
impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for Schema {}

impl Schema {
    /// Creates an empty schema.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from an iterator of relation schemas.
    ///
    /// # Errors
    /// Returns [`RelationalError::DuplicateRelation`] if two relations share a
    /// name.
    pub fn from_relations(relations: impl IntoIterator<Item = RelationSchema>) -> Result<Self> {
        let mut schema = Self::new();
        for rel in relations {
            schema.add_relation(rel)?;
        }
        Ok(schema)
    }

    /// Adds a relation to the schema.
    ///
    /// # Errors
    /// Returns [`RelationalError::DuplicateRelation`] if the name is taken.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<()> {
        let id = relation.rel_id();
        if self.relations.contains_key(&id) {
            return Err(RelationalError::DuplicateRelation(
                relation.name().to_owned(),
            ));
        }
        self.symbols.add_relation(id);
        self.relations.insert(id, relation);
        Ok(())
    }

    /// Looks up a relation by name (without growing the intern pool).
    #[must_use]
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        RelId::try_get(name).and_then(|id| self.relations.get(&id))
    }

    /// Looks up a relation by interned id.
    #[must_use]
    pub fn relation_by_id(&self, id: RelId) -> Option<&RelationSchema> {
        self.relations.get(&id)
    }

    /// Looks up a relation by name, failing with an error when absent.
    pub fn require_relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relation(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_owned()))
    }

    /// Looks up a relation by id, failing with an error when absent.
    pub fn require_relation_id(&self, id: RelId) -> Result<&RelationSchema> {
        self.relation_by_id(id)
            .ok_or_else(|| RelationalError::UnknownRelation(id.as_str().to_owned()))
    }

    /// The schema's symbol table: its relations with dense local indices,
    /// resolved at build time.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Iterates over the relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// The relation names, in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.relations.keys().map(|id| id.as_str())
    }

    /// The relation ids, in name order.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        self.relations.keys().copied()
    }

    /// The number of relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the schema has no relations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total arity across all relations (a convenient size measure used by the
    /// complexity benchmarks).
    #[must_use]
    pub fn total_arity(&self) -> usize {
        self.relations.values().map(RelationSchema::arity).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rel) in self.relations().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{rel}")?;
        }
        Ok(())
    }
}

/// Builds the phone-directory schema from the paper's introduction:
/// `Mobile#(name, postcode, street, phoneno)` and
/// `Address(street, postcode, name, houseno)`.
#[must_use]
pub fn phone_directory_schema() -> Schema {
    Schema::from_relations([
        RelationSchema::new(
            "Mobile#",
            vec![
                DataType::Text,
                DataType::Text,
                DataType::Text,
                DataType::Integer,
            ],
        ),
        RelationSchema::new(
            "Address",
            vec![
                DataType::Text,
                DataType::Text,
                DataType::Text,
                DataType::Integer,
            ],
        ),
    ])
    .expect("phone directory schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn relation_schema_reports_shape() {
        let rel = RelationSchema::text("R", 3);
        assert_eq!(rel.name(), "R");
        assert_eq!(rel.arity(), 3);
        assert_eq!(rel.column_types(), &[DataType::Text; 3]);
        assert_eq!(rel.to_string(), "R(text, text, text)");
    }

    #[test]
    fn tuple_validation_checks_arity_and_types() {
        let rel = RelationSchema::new("R", vec![DataType::Text, DataType::Integer]);
        assert!(rel
            .validate_tuple(&Tuple::new(vec![Value::str("a"), Value::Int(1)]))
            .is_ok());
        assert!(matches!(
            rel.validate_tuple(&Tuple::new(vec![Value::str("a")])),
            Err(RelationalError::ArityMismatch { .. })
        ));
        assert!(matches!(
            rel.validate_tuple(&Tuple::new(vec![Value::Int(1), Value::Int(1)])),
            Err(RelationalError::TypeMismatch { position: 1, .. })
        ));
    }

    #[test]
    fn labelled_nulls_pass_type_validation() {
        let rel = RelationSchema::new("R", vec![DataType::Integer]);
        assert!(rel
            .validate_tuple(&Tuple::new(vec![Value::labelled_null(3)]))
            .is_ok());
    }

    #[test]
    fn schema_rejects_duplicates_and_resolves_names() {
        let mut schema = Schema::new();
        schema.add_relation(RelationSchema::text("R", 2)).unwrap();
        assert!(matches!(
            schema.add_relation(RelationSchema::text("R", 4)),
            Err(RelationalError::DuplicateRelation(_))
        ));
        assert!(schema.relation("R").is_some());
        assert!(schema.relation("S-definitely-not-declared").is_none());
        assert!(schema
            .require_relation("S-definitely-not-declared")
            .is_err());
        assert_eq!(schema.len(), 1);
        assert!(!schema.is_empty());
    }

    #[test]
    fn symbol_table_is_populated_at_build_time() {
        let schema = phone_directory_schema();
        let table = schema.symbols();
        assert_eq!(table.relation_count(), 2);
        assert!(table.relation_index(RelId::new("Mobile#")).is_some());
        assert!(table.relation_index(RelId::new("Address")).is_some());
        // Dense indices follow registration order.
        assert_eq!(table.relation_index(RelId::new("Mobile#")), Some(0));
        assert_eq!(table.relation_index(RelId::new("Address")), Some(1));
    }

    #[test]
    fn phone_directory_schema_matches_paper() {
        let schema = phone_directory_schema();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.require_relation("Mobile#").unwrap().arity(), 4);
        assert_eq!(schema.require_relation("Address").unwrap().arity(), 4);
        assert_eq!(schema.total_arity(), 8);
    }
}
