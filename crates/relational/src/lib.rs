//! # accltl-relational
//!
//! The relational and query-theory substrate for the `accltl` workspace, a
//! reproduction of *"Querying Schemas With Access Restrictions"* (Benedikt,
//! Bourhis, Ley; VLDB 2012).
//!
//! The paper's specification languages and automata are interpreted over
//! relational structures, and its decision procedures bottom out in classical
//! database-theory machinery.  This crate provides all of it, from scratch:
//!
//! * values, types, relation schemas and instances ([`value`], [`schema`],
//!   [`mod@tuple`], [`instance`]);
//! * conjunctive queries, unions of conjunctive queries and positive
//!   existential first-order formulas, with evaluation, homomorphisms and
//!   canonical databases ([`mod@cq`], [`ucq`]);
//! * conjunctive queries with inequalities, used by the paper's Section 5
//!   extensions ([`inequality`]);
//! * query containment for CQs and UCQs ([`containment`]);
//! * integrity constraints — functional dependencies, inclusion dependencies
//!   and disjointness constraints — together with the chase ([`constraints`],
//!   [`mod@chase`]);
//! * a Datalog engine with semi-naive evaluation ([`datalog`]) and the
//!   containment test of a Datalog program in a positive query used by the
//!   paper's A-automaton emptiness reduction ([`datalog_containment`]);
//! * interned symbols ([`symbols`]): copyable `u32` ids for relation names,
//!   variable names and text constants, so the search inner loops compare and
//!   hash integers instead of heap strings;
//! * copy-on-write instance overlays ([`overlay`]): an `Arc`-shared base
//!   instance plus a delta of added facts, with the same read surface and
//!   iteration order as [`Instance`] — query evaluation is generic over the
//!   [`overlay::InstanceView`] trait, so configurations that only ever grow
//!   (the paper's `Conf(p, I0)`) are extended in `O(|response|)` instead of
//!   cloned;
//! * per-position value indexes ([`mod@index`]): lazily built, incrementally
//!   maintained `(relation, position, value) → tuple-id` posting lists behind
//!   [`Instance`] and layered by [`InstanceOverlay`], driving hash-join
//!   Datalog evaluation and most-selective-bound-position homomorphism
//!   search — with a scanning fallback (`ACCLTL_DISABLE_INDEXES=1`) that is
//!   byte-identical by contract;
//! * guard-verdict memoization ([`guard_cache`]): [`StructureKey`]
//!   fingerprints (`Arc` base address + canonical delta hash, restricted per
//!   sentence to the predicates it mentions) and a sharded [`GuardCache`]
//!   consulted by [`CompiledSentence::holds_cached`], so the bounded
//!   searches never repeat a homomorphism search for a guard they have
//!   already decided on an equivalent structure — with an uncached fallback
//!   (`ACCLTL_DISABLE_GUARD_CACHE=1`) that is byte-identical by contract.
//!
//! Everything is deterministic: collections are ordered (`BTreeMap`/`BTreeSet`)
//! so that repeated runs, tests and benchmarks produce identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod chase;
pub mod constraints;
pub mod containment;
pub mod cq;
pub mod datalog;
pub mod datalog_containment;
pub mod error;
pub mod guard_cache;
pub mod index;
pub mod inequality;
pub mod instance;
pub mod overlay;
pub mod schema;
pub mod symbols;
pub mod term;
pub mod tuple;
pub mod ucq;
pub mod value;

pub use atom::Atom;
pub use chase::{
    chase, chase_with_stats, ChaseConfig, ChaseOutcome, ChaseStats,
    DISABLE_INCREMENTAL_CHASE_ENV_VAR,
};
pub use constraints::{
    Constraint, DisjointnessConstraint, FunctionalDependency, InclusionDependency,
};
pub use containment::{cq_contained_in_cq, cq_contained_in_ucq, ucq_contained_in_ucq};
pub use cq::{Assignment, ConjunctiveQuery};
pub use datalog::{DatalogProgram, DatalogRule};
pub use datalog_containment::{datalog_contained_in_ucq, ContainmentVerdict, UnfoldingConfig};
pub use error::RelationalError;
pub use guard_cache::{
    guard_cache_enabled, set_guard_cache_enabled, GuardCache, GuardCacheStats, StructureKey,
    DISABLE_GUARD_CACHE_ENV_VAR, GUARD_CACHE_CUTOFF,
};
pub use index::{
    indexing_enabled, set_indexing_enabled, InstanceIndex, MatchIter, RelationIndex, ScanView,
    DISABLE_INDEXES_ENV_VAR, INDEX_CUTOFF,
};
pub use inequality::InequalityCq;
pub use instance::Instance;
pub use overlay::{InstanceOverlay, InstanceView, TupleIter};
pub use schema::{RelationSchema, Schema};
pub use symbols::{IdMap, RelId, RelKey, Sym, SymKey, SymbolTable, VarId, VarKey};
pub use term::Term;
pub use tuple::Tuple;
pub use ucq::{CompiledSentence, PosFormula, UnionOfCqs};
pub use value::{DataType, Value};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, RelationalError>;
