//! Integrity constraints: functional dependencies, inclusion dependencies and
//! disjointness constraints.
//!
//! The paper uses constraints in two roles:
//!
//! * as *restrictions on access paths* (Example 2.3/2.4: disjointness of
//!   names from street names, functional dependencies on revealed data), and
//! * as the source of its undecidability reductions (Theorems 3.1, 5.2, 5.3
//!   encode the implication problem for FDs + inclusion dependencies, which
//!   is undecidable by Chandra–Vardi).

use std::collections::BTreeSet;
use std::fmt;

use crate::error::RelationalError;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::symbols::RelId;
use crate::value::Value;
use crate::Result;

/// A functional dependency `R : lhs → rhs` (0-based positions).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionalDependency {
    /// The relation the dependency constrains.
    pub relation: RelId,
    /// The determining positions (0-based).
    pub lhs: Vec<usize>,
    /// The determined position (0-based).
    pub rhs: usize,
}

impl FunctionalDependency {
    /// Creates a functional dependency.
    #[must_use]
    pub fn new(relation: impl Into<RelId>, lhs: Vec<usize>, rhs: usize) -> Self {
        FunctionalDependency {
            relation: relation.into(),
            lhs,
            rhs,
        }
    }

    /// A key constraint: the given positions determine every position.
    #[must_use]
    pub fn key(relation: impl Into<RelId>, key_positions: Vec<usize>, arity: usize) -> Vec<Self> {
        let relation = relation.into();
        (0..arity)
            .filter(|p| !key_positions.contains(p))
            .map(|p| FunctionalDependency::new(relation, key_positions.clone(), p))
            .collect()
    }

    /// Checks positions are within the relation's arity.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let rel = schema.require_relation_id(self.relation)?;
        for &p in self.lhs.iter().chain(std::iter::once(&self.rhs)) {
            if p >= rel.arity() {
                return Err(RelationalError::PositionOutOfRange {
                    relation: self.relation.as_str().to_owned(),
                    position: p + 1,
                });
            }
        }
        Ok(())
    }

    /// True if the instance satisfies the dependency.
    #[must_use]
    pub fn satisfied(&self, instance: &Instance) -> bool {
        self.find_violation(instance).is_none()
    }

    /// Returns a pair of tuples violating the dependency, if any.
    ///
    /// The choice is deterministic: the first tuple (in tuple order) that
    /// belongs to a violating LHS-group, paired with the first group member
    /// disagreeing with it on the RHS.  The incremental chase
    /// ([`crate::chase()`]) reproduces exactly this choice from per-position
    /// indexes and dirty-tuple worklists instead of this nested scan.
    #[must_use]
    pub fn find_violation(
        &self,
        instance: &Instance,
    ) -> Option<(crate::tuple::Tuple, crate::tuple::Tuple)> {
        let tuples: Vec<_> = instance.tuples(self.relation).collect();
        for (i, t1) in tuples.iter().enumerate() {
            for t2 in &tuples[i..] {
                if t1.agrees_on(t2, &self.lhs) && t1.get(self.rhs) != t2.get(self.rhs) {
                    return Some(((*t1).clone(), (*t2).clone()));
                }
            }
        }
        None
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs: Vec<String> = self.lhs.iter().map(|p| (p + 1).to_string()).collect();
        write!(f, "{}: {} → {}", self.relation, lhs.join(","), self.rhs + 1)
    }
}

/// An inclusion dependency `R[a1..an] ⊆ S[b1..bn]` (0-based positions).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InclusionDependency {
    /// The source relation.
    pub source: RelId,
    /// Positions of the source relation (0-based).
    pub source_positions: Vec<usize>,
    /// The target relation.
    pub target: RelId,
    /// Positions of the target relation (0-based); same length as
    /// `source_positions`.
    pub target_positions: Vec<usize>,
}

impl InclusionDependency {
    /// Creates an inclusion dependency.
    #[must_use]
    pub fn new(
        source: impl Into<RelId>,
        source_positions: Vec<usize>,
        target: impl Into<RelId>,
        target_positions: Vec<usize>,
    ) -> Self {
        InclusionDependency {
            source: source.into(),
            source_positions,
            target: target.into(),
            target_positions,
        }
    }

    /// Checks the dependency is well formed with respect to a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.source_positions.len() != self.target_positions.len() {
            return Err(RelationalError::MalformedQuery(format!(
                "inclusion dependency {self} has mismatched position lists"
            )));
        }
        let src = schema.require_relation_id(self.source)?;
        let tgt = schema.require_relation_id(self.target)?;
        for &p in &self.source_positions {
            if p >= src.arity() {
                return Err(RelationalError::PositionOutOfRange {
                    relation: self.source.as_str().to_owned(),
                    position: p + 1,
                });
            }
        }
        for &p in &self.target_positions {
            if p >= tgt.arity() {
                return Err(RelationalError::PositionOutOfRange {
                    relation: self.target.as_str().to_owned(),
                    position: p + 1,
                });
            }
        }
        Ok(())
    }

    /// True if the instance satisfies the dependency.
    #[must_use]
    pub fn satisfied(&self, instance: &Instance) -> bool {
        self.find_violation(instance).is_none()
    }

    /// Returns a source tuple with no matching target tuple, if any.
    ///
    /// The choice is deterministic: the first unwitnessed source in tuple
    /// order.  The incremental chase ([`crate::chase()`]) reproduces exactly
    /// this choice by probing target witnesses through per-position indexes
    /// over a dirty-source worklist instead of this scan.
    #[must_use]
    pub fn find_violation(&self, instance: &Instance) -> Option<crate::tuple::Tuple> {
        for src_tuple in instance.tuples(self.source) {
            let projected = src_tuple.project(&self.source_positions);
            let matched = instance
                .tuples(self.target)
                .any(|tgt_tuple| tgt_tuple.project(&self.target_positions) == projected);
            if !matched {
                return Some(src_tuple.clone());
            }
        }
        None
    }
}

impl fmt::Display for InclusionDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_positions = |ps: &[usize]| {
            ps.iter()
                .map(|p| (p + 1).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "{}[{}] ⊆ {}[{}]",
            self.source,
            fmt_positions(&self.source_positions),
            self.target,
            fmt_positions(&self.target_positions)
        )
    }
}

/// A disjointness constraint: the values at `left` never overlap the values at
/// `right` (each side is a relation plus a 0-based position).
///
/// The paper's example: mobile-phone customer names are disjoint from street
/// names, so accesses to `Mobile#` with street names acquired earlier can be
/// pruned.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DisjointnessConstraint {
    /// The left side: relation and 0-based position.
    pub left: (RelId, usize),
    /// The right side: relation and 0-based position.
    pub right: (RelId, usize),
}

impl DisjointnessConstraint {
    /// Creates a disjointness constraint.
    #[must_use]
    pub fn new(
        left_relation: impl Into<RelId>,
        left_position: usize,
        right_relation: impl Into<RelId>,
        right_position: usize,
    ) -> Self {
        DisjointnessConstraint {
            left: (left_relation.into(), left_position),
            right: (right_relation.into(), right_position),
        }
    }

    /// Checks the positions are within the relations' arities.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for (rel, pos) in [&self.left, &self.right] {
            let r = schema.require_relation_id(*rel)?;
            if *pos >= r.arity() {
                return Err(RelationalError::PositionOutOfRange {
                    relation: rel.as_str().to_owned(),
                    position: pos + 1,
                });
            }
        }
        Ok(())
    }

    /// True if the instance satisfies the constraint.
    #[must_use]
    pub fn satisfied(&self, instance: &Instance) -> bool {
        self.find_violation(instance).is_none()
    }

    /// Returns a value occurring on both sides, if any.
    #[must_use]
    pub fn find_violation(&self, instance: &Instance) -> Option<Value> {
        let left_values: BTreeSet<&Value> = instance
            .tuples(self.left.0)
            .filter_map(|t| t.get(self.left.1))
            .collect();
        instance
            .tuples(self.right.0)
            .filter_map(|t| t.get(self.right.1))
            .find(|v| left_values.contains(v))
            .copied()
    }
}

impl fmt::Display for DisjointnessConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] ∩ {}[{}] = ∅",
            self.left.0,
            self.left.1 + 1,
            self.right.0,
            self.right.1 + 1
        )
    }
}

/// Any of the constraint kinds supported by the schema language.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Constraint {
    /// A functional dependency.
    Fd(FunctionalDependency),
    /// An inclusion dependency.
    Ind(InclusionDependency),
    /// A disjointness constraint.
    Disjoint(DisjointnessConstraint),
}

impl Constraint {
    /// True if the instance satisfies the constraint.
    #[must_use]
    pub fn satisfied(&self, instance: &Instance) -> bool {
        match self {
            Constraint::Fd(c) => c.satisfied(instance),
            Constraint::Ind(c) => c.satisfied(instance),
            Constraint::Disjoint(c) => c.satisfied(instance),
        }
    }

    /// Checks the constraint is well formed with respect to a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Constraint::Fd(c) => c.validate(schema),
            Constraint::Ind(c) => c.validate(schema),
            Constraint::Disjoint(c) => c.validate(schema),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Fd(c) => write!(f, "{c}"),
            Constraint::Ind(c) => write!(f, "{c}"),
            Constraint::Disjoint(c) => write!(f, "{c}"),
        }
    }
}

impl From<FunctionalDependency> for Constraint {
    fn from(c: FunctionalDependency) -> Self {
        Constraint::Fd(c)
    }
}

impl From<InclusionDependency> for Constraint {
    fn from(c: InclusionDependency) -> Self {
        Constraint::Ind(c)
    }
}

impl From<DisjointnessConstraint> for Constraint {
    fn from(c: DisjointnessConstraint) -> Self {
        Constraint::Disjoint(c)
    }
}

/// True if the instance satisfies every constraint in the set.
#[must_use]
pub fn all_satisfied(constraints: &[Constraint], instance: &Instance) -> bool {
    constraints.iter().all(|c| c.satisfied(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{phone_directory_schema, RelationSchema, Schema};
    use crate::tuple;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_relations([
            RelationSchema::new("R", vec![DataType::Text, DataType::Text]),
            RelationSchema::new("S", vec![DataType::Text]),
        ])
        .unwrap()
    }

    #[test]
    fn fd_satisfaction_and_violation() {
        let fd = FunctionalDependency::new("R", vec![0], 1);
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("R", tuple!["c", "b"]);
        assert!(fd.satisfied(&inst));
        inst.add_fact("R", tuple!["a", "x"]);
        assert!(!fd.satisfied(&inst));
        let (t1, t2) = fd.find_violation(&inst).unwrap();
        assert!(t1.agrees_on(&t2, &[0]));
        assert_ne!(t1.get(1), t2.get(1));
    }

    #[test]
    fn key_generates_one_fd_per_non_key_position() {
        let fds = FunctionalDependency::key("R", vec![0], 3);
        assert_eq!(fds.len(), 2);
        assert!(fds.iter().all(|fd| fd.lhs == vec![0]));
    }

    #[test]
    fn fd_validation_checks_positions() {
        assert!(FunctionalDependency::new("R", vec![0], 1)
            .validate(&schema())
            .is_ok());
        assert!(FunctionalDependency::new("R", vec![0], 5)
            .validate(&schema())
            .is_err());
        assert!(FunctionalDependency::new("Z", vec![0], 1)
            .validate(&schema())
            .is_err());
    }

    #[test]
    fn inclusion_dependency_satisfaction() {
        let ind = InclusionDependency::new("R", vec![1], "S", vec![0]);
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        assert!(!ind.satisfied(&inst));
        assert_eq!(ind.find_violation(&inst), Some(tuple!["a", "b"]));
        inst.add_fact("S", tuple!["b"]);
        assert!(ind.satisfied(&inst));
    }

    #[test]
    fn inclusion_dependency_validation() {
        assert!(InclusionDependency::new("R", vec![1], "S", vec![0])
            .validate(&schema())
            .is_ok());
        assert!(InclusionDependency::new("R", vec![1, 0], "S", vec![0])
            .validate(&schema())
            .is_err());
        assert!(InclusionDependency::new("R", vec![9], "S", vec![0])
            .validate(&schema())
            .is_err());
    }

    #[test]
    fn disjointness_constraint_from_the_paper() {
        // Customer names (Mobile# position 1) disjoint from street names
        // (Address position 1).
        let dc = DisjointnessConstraint::new("Mobile#", 0, "Address", 0);
        assert!(dc.validate(&phone_directory_schema()).is_ok());

        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        assert!(dc.satisfied(&inst));

        // A person named like a street violates it.
        inst.add_fact("Mobile#", tuple!["Parks Rd", "OX13QD", "High St", 1]);
        assert!(!dc.satisfied(&inst));
        assert_eq!(dc.find_violation(&inst), Some(Value::str("Parks Rd")));
    }

    #[test]
    fn constraint_enum_dispatches() {
        let constraints: Vec<Constraint> = vec![
            FunctionalDependency::new("R", vec![0], 1).into(),
            InclusionDependency::new("R", vec![1], "S", vec![0]).into(),
            DisjointnessConstraint::new("R", 0, "S", 0).into(),
        ];
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("S", tuple!["b"]);
        assert!(all_satisfied(&constraints, &inst));

        inst.add_fact("S", tuple!["a"]);
        // Now disjointness of R[1] and S[1] is violated ("a" occurs in both).
        assert!(!all_satisfied(&constraints, &inst));
    }

    #[test]
    fn displays_are_one_based() {
        assert_eq!(
            FunctionalDependency::new("R", vec![0, 1], 2).to_string(),
            "R: 1,2 → 3"
        );
        assert_eq!(
            InclusionDependency::new("R", vec![0], "S", vec![1]).to_string(),
            "R[1] ⊆ S[2]"
        );
        assert_eq!(
            DisjointnessConstraint::new("R", 0, "S", 1).to_string(),
            "R[1] ∩ S[2] = ∅"
        );
    }
}
