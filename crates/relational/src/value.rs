//! Data values and data types.
//!
//! The paper fixes a set `Types` of datatypes containing at least the integers
//! and booleans (Section 2).  We additionally support text values since the
//! running example (a Web telephone directory) binds names, street names and
//! postcodes.
//!
//! Text values are interned ([`Sym`]): a [`Value`] is a small `Copy`-friendly
//! enum whose equality and hashing are integer operations, which is what the
//! chase, homomorphism search and product-emptiness inner loops spend their
//! time on.  Labelled nulls (the placeholders invented by the chase) get a
//! dedicated variant so creating one never touches the intern pool.

use std::fmt;

use crate::symbols::Sym;

/// A datatype for a relation position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Integer,
    /// Unicode text.
    Text,
    /// Booleans.
    Boolean,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "int"),
            DataType::Text => write!(f, "text"),
            DataType::Boolean => write!(f, "bool"),
        }
    }
}

/// A concrete data value stored in a tuple or used in a binding.
///
/// Values are `Copy`, totally ordered and hashable.  The ordering of text
/// values is lexicographic on the *resolved strings* (not on intern ids), so
/// that ordered collections iterate deterministically across runs — for
/// ordinary data, the same order the previous `String`-backed representation
/// produced.  Labelled nulls are the one deliberate exception: they now form
/// their own variant ordered numerically after all text (previously they were
/// `⊥n…`-prefixed strings sorted lexicographically among the other strings),
/// which keeps chase-generated placeholders in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A text value (interned).
    Str(Sym),
    /// A labelled null `⊥n<id>` produced by the chase or by canonical-database
    /// freezing.
    Null(u64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// Returns the datatype of this value.  Labelled nulls are typed as text
    /// placeholders (they are accepted at any position by schema validation).
    #[must_use]
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Integer,
            Value::Str(_) | Value::Null(_) => DataType::Text,
            Value::Bool(_) => DataType::Boolean,
        }
    }

    /// Convenience constructor for text values.
    ///
    /// The labelled-null spelling `⊥n<digits>` ([`NULL_PREFIX`]) is reserved:
    /// a text constant spelled that way is normalised to the corresponding
    /// [`Value::Null`], preserving the pre-interning behaviour where nulls
    /// were recognised by prefix inspection of ordinary strings.
    #[must_use]
    pub fn str(s: impl AsRef<str> + Into<Sym>) -> Self {
        match parse_null(s.as_ref()) {
            Some(id) => Value::Null(id),
            None => Value::Str(s.into()),
        }
    }

    /// True if this value is a "labelled null" produced by the chase or by
    /// canonical-database freezing.
    #[must_use]
    pub fn is_labelled_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Creates a fresh labelled null with the given numeric identifier.
    #[must_use]
    pub fn labelled_null(id: u64) -> Self {
        Value::Null(id)
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Str(_) => 1,
            Value::Null(_) => 2,
            Value::Bool(_) => 3,
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Null(a), Value::Null(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reserved prefix identifying labelled nulls in their rendered form.
/// Text constants spelled `⊥n<digits>` are normalised to [`Value::Null`] by
/// every string-accepting constructor.
pub const NULL_PREFIX: &str = "\u{22a5}n";

/// Parses the reserved labelled-null spelling, if `s` uses it.
fn parse_null(s: &str) -> Option<u64> {
    s.strip_prefix(NULL_PREFIX)
        .and_then(|rest| rest.parse::<u64>().ok())
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{:?}", s.as_str()),
            Value::Null(id) => write!(f, "\"{NULL_PREFIX}{id}\""),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        match parse_null(v) {
            Some(id) => Value::Null(id),
            None => Value::Str(Sym::new(v)),
        }
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::from(v.as_str())
    }
}

impl From<Sym> for Value {
    fn from(v: Sym) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types_match_variants() {
        assert_eq!(Value::Int(3).data_type(), DataType::Integer);
        assert_eq!(Value::str("x").data_type(), DataType::Text);
        assert_eq!(Value::Bool(true).data_type(), DataType::Boolean);
    }

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("abc"), Value::Str(Sym::new("abc")));
        assert_eq!(
            Value::from(String::from("abc")),
            Value::Str(Sym::new("abc"))
        );
        assert_eq!(Value::from(false), Value::Bool(false));
    }

    #[test]
    fn labelled_nulls_are_recognised() {
        let n = Value::labelled_null(17);
        assert!(n.is_labelled_null());
        assert!(!Value::str("ordinary").is_labelled_null());
        assert!(!Value::Int(17).is_labelled_null());
    }

    #[test]
    fn reserved_null_spelling_normalises_to_null() {
        // Pre-interning, nulls were strings recognised by prefix; the
        // dedicated variant must keep that spelling reserved.
        assert_eq!(Value::str("\u{22a5}n5"), Value::labelled_null(5));
        assert_eq!(Value::from("\u{22a5}n5"), Value::labelled_null(5));
        assert!(Value::from(String::from("\u{22a5}n7")).is_labelled_null());
        // Non-numeric suffixes are ordinary text.
        assert!(!Value::str("\u{22a5}nabc").is_labelled_null());
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(2),
            Value::Bool(true),
            Value::Int(1),
            Value::str("a"),
        ];
        vals.sort();
        let sorted_again = {
            let mut v = vals.clone();
            v.sort();
            v
        };
        assert_eq!(vals, sorted_again);
    }

    #[test]
    fn text_ordering_is_lexicographic_regardless_of_intern_order() {
        // Interned in reverse order on purpose.
        let z = Value::str("zz-value-order");
        let a = Value::str("aa-value-order");
        assert!(a < z);
    }

    #[test]
    fn display_renders_each_variant() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::labelled_null(17).to_string(), "\"\u{22a5}n17\"");
        assert_eq!(DataType::Integer.to_string(), "int");
        assert_eq!(DataType::Text.to_string(), "text");
        assert_eq!(DataType::Boolean.to_string(), "bool");
    }
}
