//! Data values and data types.
//!
//! The paper fixes a set `Types` of datatypes containing at least the integers
//! and booleans (Section 2).  We additionally support text values since the
//! running example (a Web telephone directory) binds names, street names and
//! postcodes.

use std::fmt;

/// A datatype for a relation position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Integer,
    /// Unicode text.
    Text,
    /// Booleans.
    Boolean,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "int"),
            DataType::Text => write!(f, "text"),
            DataType::Boolean => write!(f, "bool"),
        }
    }
}

/// A concrete data value stored in a tuple or used in a binding.
///
/// Values are totally ordered (lexicographically across variants) so that
/// instances can be kept in ordered sets and all algorithms are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A text value.
    Str(String),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// Returns the datatype of this value.
    #[must_use]
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Integer,
            Value::Str(_) => DataType::Text,
            Value::Bool(_) => DataType::Boolean,
        }
    }

    /// Convenience constructor for text values.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True if this value is a "labelled null" produced by the chase or by
    /// canonical-database freezing (reserved `⊥` prefix).
    #[must_use]
    pub fn is_labelled_null(&self) -> bool {
        matches!(self, Value::Str(s) if s.starts_with(NULL_PREFIX))
    }

    /// Creates a fresh labelled null with the given numeric identifier.
    #[must_use]
    pub fn labelled_null(id: u64) -> Self {
        Value::Str(format!("{NULL_PREFIX}{id}"))
    }
}

/// Reserved prefix identifying labelled nulls.
pub const NULL_PREFIX: &str = "\u{22a5}n";

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types_match_variants() {
        assert_eq!(Value::Int(3).data_type(), DataType::Integer);
        assert_eq!(Value::str("x").data_type(), DataType::Text);
        assert_eq!(Value::Bool(true).data_type(), DataType::Boolean);
    }

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("abc"), Value::Str("abc".into()));
        assert_eq!(Value::from(String::from("abc")), Value::Str("abc".into()));
        assert_eq!(Value::from(false), Value::Bool(false));
    }

    #[test]
    fn labelled_nulls_are_recognised() {
        let n = Value::labelled_null(17);
        assert!(n.is_labelled_null());
        assert!(!Value::str("ordinary").is_labelled_null());
        assert!(!Value::Int(17).is_labelled_null());
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(2),
            Value::Bool(true),
            Value::Int(1),
            Value::str("a"),
        ];
        vals.sort();
        let sorted_again = {
            let mut v = vals.clone();
            v.sort();
            v
        };
        assert_eq!(vals, sorted_again);
    }

    #[test]
    fn display_renders_each_variant() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(DataType::Integer.to_string(), "int");
        assert_eq!(DataType::Text.to_string(), "text");
        assert_eq!(DataType::Boolean.to_string(), "bool");
    }
}
