//! Copy-on-write instance overlays: a shared base [`Instance`] plus a small
//! delta of added facts.
//!
//! The paper's decision procedures all walk *configurations* `Conf(p, I0)` —
//! instances that only ever **grow** along an access path.  Materializing a
//! fresh `Instance` per step makes a step cost `O(|Conf|)`; an
//! [`InstanceOverlay`] shares the base behind an [`Arc`] and records only the
//! step's delta, so constructing the next configuration costs
//! `O(|response|)`.
//!
//! Overlays present the same read surface as [`Instance`] — `contains`,
//! `tuples`, `relation_size`, `facts`, `active_domain`, `Display` — with the
//! **same iteration order** (relations in name order, tuples in value order),
//! so every deterministic algorithm built on instance iteration behaves
//! identically on an overlay.  The [`InstanceView`] trait abstracts exactly
//! that read surface; the homomorphism search in [`mod@crate::cq`] (and with it
//! CQ/UCQ/positive-formula evaluation) is generic over it, which is what lets
//! the bounded searches evaluate guards against an overlay without ever
//! cloning the underlying configuration.

use std::collections::btree_set;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::Peekable;
use std::sync::Arc;

use crate::guard_cache::{RelationDigest, StructureKey};
use crate::index::MatchIter;
use crate::instance::Instance;
use crate::symbols::{RelId, RelKey};
use crate::tuple::Tuple;
use crate::value::Value;

/// A read-only view of a set of facts, presented exactly like an
/// [`Instance`]: relations in name order, tuples in value order.
///
/// Implemented by [`Instance`] itself and by [`InstanceOverlay`].  Query
/// evaluation ([`mod@crate::cq`], [`crate::inequality`], [`crate::ucq`]) is
/// generic over this trait, so formulas can be checked against a
/// configuration overlay without materializing it.
///
/// The `tuples_matching` / `selectivity` / `tuples_matching_all` /
/// `known_uniform_arity` methods surface the per-position value indexes of
/// [`crate::index`].  Their defaults *scan*, and every override must return
/// exactly the same tuples in exactly the same (tuple) order — that contract
/// is what keeps indexed and scanning evaluation byte-identical (see
/// [`crate::index::ScanView`] and `tests/index_props.rs`).
pub trait InstanceView {
    /// Iterates over the tuples of one relation, in tuple order.
    fn tuples_of(&self, relation: RelId) -> TupleIter<'_>;

    /// The number of tuples in one relation.
    fn count_of(&self, relation: RelId) -> usize;

    /// True if the view contains the fact.
    fn has_fact(&self, relation: RelId, tuple: &Tuple) -> bool;

    /// Calls `f` once per fact, in canonical (relation name, tuple) order.
    fn each_fact(&self, f: &mut dyn FnMut(RelId, &Tuple));

    /// The active domain: every value appearing in some fact.
    fn view_active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        self.each_fact(&mut |_, tuple| {
            dom.extend(tuple.values().iter().copied());
        });
        dom
    }

    /// The tuples of `relation` holding `value` at `position`, in tuple
    /// order.  The default scans; [`Instance`] and [`InstanceOverlay`]
    /// answer from posting lists when the relation is indexed.
    fn tuples_matching(&self, relation: RelId, position: usize, value: &Value) -> MatchIter<'_> {
        MatchIter::scan_one(self.tuples_of(relation), position, value)
    }

    /// The exact number of tuples of `relation` holding `value` at
    /// `position` — the posting-list length when indexed, a filtered count
    /// otherwise.  Drives the homomorphism search's
    /// most-selective-bound-position atom ordering, so every implementation
    /// must return the same number the default scan would.
    fn selectivity(&self, relation: RelId, position: usize, value: &Value) -> usize {
        MatchIter::scan_one(self.tuples_of(relation), position, value).count()
    }

    /// The tuples of `relation` matching *every* `(position, value)` pair,
    /// in tuple order.  Indexed implementations intersect posting lists; the
    /// default filters a scan.  An empty `bound` yields the whole relation.
    fn tuples_matching_all<'a>(
        &'a self,
        relation: RelId,
        bound: &'a [(usize, Value)],
    ) -> MatchIter<'a> {
        match bound {
            [] => MatchIter::all(self.tuples_of(relation)),
            [(position, value)] => self.tuples_matching(relation, *position, value),
            _ => MatchIter::scan_all(self.tuples_of(relation), bound),
        }
    }

    /// `Some(a)` when the view can answer *for free* that every tuple of
    /// `relation` has arity `a` (index arenas track this; the default
    /// answers `None` rather than scan).  Lets the homomorphism search hoist
    /// its arity check to the relation level.
    fn known_uniform_arity(&self, relation: RelId) -> Option<usize> {
        let _ = relation;
        None
    }

    /// A [`StructureKey`] fingerprinting this view restricted to the given
    /// (sorted, deduplicated) relations, when the view can produce one
    /// cheaply — i.e. when it is an overlay over an `Arc`-shared immutable
    /// base, so the base contributes an address and only the delta needs
    /// hashing.  The default answers `None`: plain instances are mutable,
    /// so they have no sound cheap fingerprint, and consumers
    /// ([`crate::CompiledSentence::holds_cached`]) fall back to uncached
    /// evaluation.
    fn guard_key(&self, relations: &[RelId]) -> Option<StructureKey> {
        let _ = relations;
        None
    }
}

impl InstanceView for Instance {
    fn tuples_of(&self, relation: RelId) -> TupleIter<'_> {
        match self.relation(relation) {
            Some(set) => TupleIter::Set(set.iter()),
            None => TupleIter::Empty,
        }
    }

    fn count_of(&self, relation: RelId) -> usize {
        self.relation_size(relation)
    }

    fn has_fact(&self, relation: RelId, tuple: &Tuple) -> bool {
        self.contains(relation, tuple)
    }

    fn each_fact(&self, f: &mut dyn FnMut(RelId, &Tuple)) {
        for (rel, tuple) in self.facts() {
            f(rel, tuple);
        }
    }

    fn view_active_domain(&self) -> BTreeSet<Value> {
        self.active_domain()
    }

    fn tuples_matching(&self, relation: RelId, position: usize, value: &Value) -> MatchIter<'_> {
        match self.query_index(relation) {
            Some(index) => index.matching(position, value),
            None => MatchIter::scan_one(self.tuples_of(relation), position, value),
        }
    }

    fn selectivity(&self, relation: RelId, position: usize, value: &Value) -> usize {
        match self.query_index(relation) {
            Some(index) => index.selectivity(position, value),
            None => MatchIter::scan_one(self.tuples_of(relation), position, value).count(),
        }
    }

    fn tuples_matching_all<'a>(
        &'a self,
        relation: RelId,
        bound: &'a [(usize, Value)],
    ) -> MatchIter<'a> {
        if bound.is_empty() {
            return MatchIter::all(self.tuples_of(relation));
        }
        match self.query_index(relation) {
            Some(index) => index.matching_all(bound),
            None => match bound {
                [(position, value)] => {
                    MatchIter::scan_one(self.tuples_of(relation), *position, value)
                }
                _ => MatchIter::scan_all(self.tuples_of(relation), bound),
            },
        }
    }

    fn known_uniform_arity(&self, relation: RelId) -> Option<usize> {
        // Free only when the index is already built; never triggers a build
        // (tiny relations stay on the per-tuple check).
        self.built_index()?.relation(relation)?.uniform_arity()
    }
}

/// An iterator over the tuples of one relation of an [`InstanceView`].
#[derive(Debug, Clone)]
pub enum TupleIter<'a> {
    /// The relation is absent.
    Empty,
    /// A plain instance relation.
    Set(btree_set::Iter<'a, Tuple>),
    /// An overlay relation: base and delta merged in tuple order.
    Merged(MergedTuples<'a>),
}

impl<'a> Iterator for TupleIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            TupleIter::Empty => None,
            TupleIter::Set(iter) => iter.next(),
            TupleIter::Merged(merged) => merged.next(),
        }
    }
}

/// Merges two ordered tuple sets into one ordered stream (duplicates, which a
/// well-formed overlay never produces, are yielded once).
#[derive(Debug, Clone)]
pub struct MergedTuples<'a> {
    base: Peekable<btree_set::Iter<'a, Tuple>>,
    delta: Peekable<btree_set::Iter<'a, Tuple>>,
}

impl<'a> MergedTuples<'a> {
    fn new(base: &'a BTreeSet<Tuple>, delta: &'a BTreeSet<Tuple>) -> Self {
        MergedTuples {
            base: base.iter().peekable(),
            delta: delta.iter().peekable(),
        }
    }
}

impl<'a> Iterator for MergedTuples<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match (self.base.peek(), self.delta.peek()) {
            (Some(b), Some(d)) => match b.cmp(d) {
                std::cmp::Ordering::Less => self.base.next(),
                std::cmp::Ordering::Greater => self.delta.next(),
                std::cmp::Ordering::Equal => {
                    self.delta.next();
                    self.base.next()
                }
            },
            (Some(_), None) => self.base.next(),
            (None, _) => self.delta.next(),
        }
    }
}

/// A configuration as a copy-on-write overlay: an [`Arc`]-shared base
/// instance plus the facts added on top of it.
///
/// The delta never contains a fact that is already in the base (pushes of
/// such facts are no-ops), so `fact_count` is a constant-time sum and two
/// overlays over the same base are equal iff their deltas are.
///
/// # Equality and hashing
///
/// `Eq`/`Hash` are *representation*-structural: two overlays are equal when
/// their bases hold the same facts (checked by pointer first) **and** their
/// deltas hold the same facts.  For overlays sharing one base `Arc` — the
/// frontier-set use case — this coincides with configuration equality and
/// costs only a delta comparison; hashing never touches the base beyond its
/// fact count.  Overlays that split the same fact set differently between
/// base and delta compare unequal; compare [`InstanceOverlay::materialize`]
/// outputs when set equality across different bases is needed.
#[derive(Debug, Clone)]
pub struct InstanceOverlay {
    base: Arc<Instance>,
    delta: Instance,
}

impl InstanceOverlay {
    /// An overlay with no added facts over the given base.
    #[must_use]
    pub fn new(base: Arc<Instance>) -> Self {
        InstanceOverlay {
            base,
            delta: Instance::new(),
        }
    }

    /// The shared base instance.
    #[must_use]
    pub fn base(&self) -> &Arc<Instance> {
        &self.base
    }

    /// The facts added on top of the base.
    #[must_use]
    pub fn delta(&self) -> &Instance {
        &self.delta
    }

    /// Adds a fact on top of the base.  Returns `true` if the fact was not
    /// already present (in the base or the delta).
    pub fn push_fact(&mut self, relation: impl Into<RelId>, tuple: Tuple) -> bool {
        let relation = relation.into();
        if self.base.contains(relation, &tuple) {
            return false;
        }
        self.delta.add_fact(relation, tuple)
    }

    /// True if the overlay contains the fact (in the base or the delta).
    #[must_use]
    pub fn contains(&self, relation: impl RelKey, tuple: &Tuple) -> bool {
        let Some(relation) = relation.resolve_rel() else {
            return false;
        };
        self.base.contains(relation, tuple) || self.delta.contains(relation, tuple)
    }

    /// Iterates over the tuples of a relation in tuple order (matching the
    /// materialized instance).
    #[must_use]
    pub fn tuples(&self, relation: impl RelKey) -> TupleIter<'_> {
        let Some(relation) = relation.resolve_rel() else {
            return TupleIter::Empty;
        };
        match (self.base.relation(relation), self.delta.relation(relation)) {
            (Some(base), Some(delta)) => TupleIter::Merged(MergedTuples::new(base, delta)),
            (Some(set), None) | (None, Some(set)) => TupleIter::Set(set.iter()),
            (None, None) => TupleIter::Empty,
        }
    }

    /// The number of facts in one relation.
    #[must_use]
    pub fn relation_size(&self, relation: impl RelKey) -> usize {
        let Some(relation) = relation.resolve_rel() else {
            return 0;
        };
        self.base.relation_size(relation) + self.delta.relation_size(relation)
    }

    /// The number of facts across all relations (constant time: the delta is
    /// disjoint from the base).
    #[must_use]
    pub fn fact_count(&self) -> usize {
        self.base.fact_count() + self.delta.fact_count()
    }

    /// True if the overlay holds no facts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.delta.is_empty()
    }

    /// Iterates over all facts as `(relation, tuple)` pairs, in exactly the
    /// order [`Instance::facts`] would produce on the materialized instance.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &Tuple)> {
        RelationSlots {
            base: self.base.entries(),
            delta: self.delta.entries(),
        }
        .flat_map(|(rel, base, delta)| {
            let iter = match (base, delta) {
                (Some(b), Some(d)) => TupleIter::Merged(MergedTuples::new(b, d)),
                (Some(set), None) | (None, Some(set)) => TupleIter::Set(set.iter()),
                (None, None) => TupleIter::Empty,
            };
            iter.map(move |t| (rel, t))
        })
    }

    /// The active domain of the overlaid configuration.
    #[must_use]
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = self.base.active_domain();
        dom.extend(self.delta.active_domain());
        dom
    }

    /// Materializes the overlay into a standalone [`Instance`].
    #[must_use]
    pub fn materialize(&self) -> Instance {
        let mut instance = self.base.as_ref().clone();
        instance.union_in_place(&self.delta);
        instance
    }

    /// The overlay's [`StructureKey`]: a content digest of all facts the
    /// overlay holds.  The base's per-relation digests are computed once per
    /// shared base and cached on it; the delta's are maintained fact by fact
    /// as `push_fact` adds them — so the key costs a table sum, never a
    /// rehash of the configuration.  Equal fact sets get equal keys no
    /// matter which chain or allocation produced them — see
    /// [`crate::guard_cache`] for why that makes it a sound cache key.
    #[must_use]
    pub fn structure_key(&self) -> StructureKey {
        let mut digest = self.base.content_digest();
        digest.merge(self.delta.content_digest());
        StructureKey::from(digest)
    }

    /// The overlay's [`StructureKey`] restricted to the given relations
    /// (which must be sorted and deduplicated for keys to be canonical):
    /// only facts of those relations are digested, so overlays differing
    /// solely in facts outside the list — e.g. in the `IsBind` fact a guard
    /// never mentions — share one key.  This is the form the guard cache
    /// uses, keyed per sentence by the sentence's own predicate list.
    #[must_use]
    pub fn structure_key_for(&self, relations: &[RelId]) -> StructureKey {
        let mut digest = RelationDigest::default();
        for &rel in relations {
            digest.merge(self.base.relation_digest(rel));
            digest.merge(self.delta.relation_digest(rel));
        }
        StructureKey::from(digest)
    }
}

impl From<Instance> for InstanceOverlay {
    fn from(instance: Instance) -> Self {
        InstanceOverlay::new(Arc::new(instance))
    }
}

impl PartialEq for InstanceOverlay {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.base, &other.base) || self.base == other.base)
            && self.delta == other.delta
    }
}

impl Eq for InstanceOverlay {}

impl Hash for InstanceOverlay {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal overlays have equal base fact sets (hence counts) and equal
        // deltas, so this stays consistent with `Eq` while never walking the
        // shared base.
        self.base.fact_count().hash(state);
        self.delta.hash(state);
    }
}

impl fmt::Display for InstanceOverlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        let mut result = Ok(());
        self.each_fact(&mut |rel, tuple| {
            if result.is_err() {
                return;
            }
            if !first {
                result = writeln!(f);
            }
            first = false;
            if result.is_ok() {
                result = write!(f, "{rel}{tuple}");
            }
        });
        result
    }
}

impl InstanceView for InstanceOverlay {
    fn tuples_of(&self, relation: RelId) -> TupleIter<'_> {
        self.tuples(relation)
    }

    fn count_of(&self, relation: RelId) -> usize {
        self.relation_size(relation)
    }

    fn has_fact(&self, relation: RelId, tuple: &Tuple) -> bool {
        self.contains(relation, tuple)
    }

    fn each_fact(&self, f: &mut dyn FnMut(RelId, &Tuple)) {
        for (rel, tuple) in self.facts() {
            f(rel, tuple);
        }
    }

    fn view_active_domain(&self) -> BTreeSet<Value> {
        self.active_domain()
    }

    fn tuples_matching(&self, relation: RelId, position: usize, value: &Value) -> MatchIter<'_> {
        MatchIter::merged(
            self.base.tuples_matching(relation, position, value),
            self.delta.tuples_matching(relation, position, value),
        )
    }

    fn selectivity(&self, relation: RelId, position: usize, value: &Value) -> usize {
        // Exact, not an estimate: the delta is disjoint from the base.
        self.base.selectivity(relation, position, value)
            + self.delta.selectivity(relation, position, value)
    }

    fn tuples_matching_all<'a>(
        &'a self,
        relation: RelId,
        bound: &'a [(usize, Value)],
    ) -> MatchIter<'a> {
        MatchIter::merged(
            self.base.tuples_matching_all(relation, bound),
            self.delta.tuples_matching_all(relation, bound),
        )
    }

    fn guard_key(&self, relations: &[RelId]) -> Option<StructureKey> {
        Some(self.structure_key_for(relations))
    }

    fn known_uniform_arity(&self, relation: RelId) -> Option<usize> {
        match (
            self.base.count_of(relation) == 0,
            self.delta.count_of(relation) == 0,
        ) {
            (_, true) => self.base.known_uniform_arity(relation),
            (true, false) => self.delta.known_uniform_arity(relation),
            (false, false) => {
                let arity = self.base.known_uniform_arity(relation)?;
                (self.delta.known_uniform_arity(relation) == Some(arity)).then_some(arity)
            }
        }
    }
}

/// Merge-join over the relation slots of base and delta, in relation-name
/// order (both inputs are name-sorted).
struct RelationSlots<'a> {
    base: &'a [(RelId, BTreeSet<Tuple>)],
    delta: &'a [(RelId, BTreeSet<Tuple>)],
}

impl<'a> Iterator for RelationSlots<'a> {
    type Item = (
        RelId,
        Option<&'a BTreeSet<Tuple>>,
        Option<&'a BTreeSet<Tuple>>,
    );

    fn next(&mut self) -> Option<Self::Item> {
        match (self.base.first(), self.delta.first()) {
            (Some((b_rel, b_set)), Some((d_rel, d_set))) => match b_rel.cmp(d_rel) {
                std::cmp::Ordering::Less => {
                    self.base = &self.base[1..];
                    Some((*b_rel, Some(b_set), None))
                }
                std::cmp::Ordering::Greater => {
                    self.delta = &self.delta[1..];
                    Some((*d_rel, None, Some(d_set)))
                }
                std::cmp::Ordering::Equal => {
                    self.base = &self.base[1..];
                    self.delta = &self.delta[1..];
                    Some((*b_rel, Some(b_set), Some(d_set)))
                }
            },
            (Some((rel, set)), None) => {
                self.base = &self.base[1..];
                Some((*rel, Some(set), None))
            }
            (None, Some((rel, set))) => {
                self.delta = &self.delta[1..];
                Some((*rel, None, Some(set)))
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn base() -> Arc<Instance> {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        Arc::new(inst)
    }

    #[test]
    fn push_fact_skips_base_and_delta_duplicates() {
        let mut overlay = InstanceOverlay::new(base());
        assert!(!overlay.push_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]));
        assert!(overlay.push_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]));
        assert!(!overlay.push_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]));
        assert_eq!(overlay.fact_count(), 3);
        assert_eq!(overlay.delta().fact_count(), 1);
    }

    #[test]
    fn lookup_api_matches_materialized_instance() {
        let mut overlay = InstanceOverlay::new(base());
        overlay.push_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        overlay.push_fact("Extra", tuple![1]);
        let materialized = overlay.materialize();

        assert_eq!(overlay.fact_count(), materialized.fact_count());
        assert!(overlay.contains("Address", &tuple!["Parks Rd", "OX13QD", "Jones", 16]));
        assert!(overlay.contains("Mobile#", &tuple!["Smith", "OX13QD", "Parks Rd", 5551212]));
        assert!(!overlay.contains("Nope", &tuple![1]));
        assert_eq!(overlay.relation_size("Address"), 2);
        assert_eq!(overlay.active_domain(), materialized.active_domain());
        assert_eq!(overlay.to_string(), materialized.to_string());

        let overlay_facts: Vec<(RelId, Tuple)> = overlay
            .facts()
            .map(|(rel, tuple)| (rel, tuple.clone()))
            .collect();
        let eager_facts: Vec<(RelId, Tuple)> = materialized
            .facts()
            .map(|(rel, tuple)| (rel, tuple.clone()))
            .collect();
        assert_eq!(overlay_facts, eager_facts);
    }

    #[test]
    fn merged_relation_iteration_is_tuple_ordered() {
        let mut overlay = InstanceOverlay::new(base());
        overlay.push_fact("Address", tuple!["Abbey Rd", "NW80AA", "Zed", 3]);
        let tuples: Vec<&Tuple> = overlay.tuples("Address").collect();
        let materialized = overlay.materialize();
        let eager: Vec<&Tuple> = materialized.tuples("Address").collect();
        assert_eq!(tuples, eager);
        // The delta tuple sorts first.
        assert_eq!(tuples[0], &tuple!["Abbey Rd", "NW80AA", "Zed", 3]);
    }

    #[test]
    fn equality_and_hash_are_cheap_on_a_shared_base() {
        use std::collections::HashSet;
        let shared = base();
        let mut a = InstanceOverlay::new(shared.clone());
        let mut b = InstanceOverlay::new(shared.clone());
        assert_eq!(a, b);
        a.push_fact("Extra", tuple![1]);
        assert_ne!(a, b);
        b.push_fact("Extra", tuple![1]);
        assert_eq!(a, b);

        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn empty_overlay_displays_like_empty_instance() {
        let overlay = InstanceOverlay::new(Arc::new(Instance::new()));
        assert!(overlay.is_empty());
        assert_eq!(overlay.to_string(), "∅");
    }

    #[test]
    fn view_trait_agrees_between_instance_and_overlay() {
        let mut overlay = InstanceOverlay::new(base());
        overlay.push_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        let materialized = overlay.materialize();
        let rel = RelId::new("Address");
        assert_eq!(overlay.count_of(rel), materialized.count_of(rel));
        let a: Vec<&Tuple> = overlay.tuples_of(rel).collect();
        let b: Vec<&Tuple> = materialized.tuples_of(rel).collect();
        assert_eq!(a, b);
        assert_eq!(
            overlay.view_active_domain(),
            materialized.view_active_domain()
        );
    }
}
