//! Database instances: finite collections of tuples per relation.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

use crate::guard_cache::RelationDigest;
use crate::index::{indexing_enabled, InstanceIndex, RelationIndex, INDEX_CUTOFF};
use crate::schema::Schema;
use crate::symbols::{RelId, RelKey};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A database instance.
///
/// Facts are stored as a dense map keyed by interned relation id: a vector of
/// `(RelId, tuple set)` entries sorted by relation *name* (the `RelId`
/// ordering, which has an integer fast path for equality), looked up by
/// binary search.  Relation keying never hashes or clones a string, and
/// probing with an equal id is pure integer work; the name ordering keeps
/// iteration — `facts()`, the chase's first-violation scan, `Display` — in
/// exactly the order the previous `String`-keyed `BTreeMap` produced,
/// independent of interning order.  Within a relation, tuple sets stay
/// ordered (`BTreeSet` over [`Value`]'s order: lexicographic for text,
/// numeric for labelled nulls — see [`Value`] for the one way this differs
/// from the old `String` representation), so every algorithm built on top is
/// deterministic across runs.
///
/// An instance is not tied to a [`Schema`]; validation against a schema is
/// explicit via [`Instance::validate_against`], because the paper frequently
/// works with *extended* vocabularies (the `SchAcc` pre/post copies, the
/// Datalog `Background`/`View` predicates) that are derived from a base
/// schema.  Relation ids are process-wide (see [`crate::symbols`]), so
/// instances from different schemas can be unioned and compared safely.
#[derive(Default)]
pub struct Instance {
    /// Sorted by relation name (`RelId` order); never contains an empty tuple
    /// set (so that structural equality coincides with set-of-facts
    /// equality, and `Ord`/`Hash` are canonical).
    facts: Vec<(RelId, BTreeSet<Tuple>)>,
    /// Lazily built per-position value index (see [`crate::index`]):
    /// populated on the first indexed lookup against a relation of at least
    /// the index cutoff, maintained incrementally by [`Instance::add_fact`]
    /// and [`Instance::remove_fact`], and dropped by every other mutation
    /// (and by `Clone`).  Never consulted by `Eq`/`Ord`/`Hash`, which remain
    /// pure fact-set comparisons.
    index: OnceLock<InstanceIndex>,
    /// Lazily built per-relation content digests (see
    /// [`crate::guard_cache`]), name-sorted like `facts`: computed on the
    /// first structure-key request, maintained incrementally by
    /// [`Instance::add_fact`], and dropped by every other mutation (and by
    /// `Clone`) — the exact lifecycle of `index`.  Derived data: never
    /// consulted by `Eq`/`Ord`/`Hash`/`Debug`.
    digests: OnceLock<Vec<(RelId, RelationDigest)>>,
    /// Per-instance override of [`INDEX_CUTOFF`], set by
    /// [`Instance::set_index_cutoff`] on transition-structure bases so
    /// `EngineConfig::index_cutoff` reaches the indexed-lookup decision.  A
    /// performance knob, not content: excluded from `Eq`/`Ord`/`Hash`/
    /// `Debug`, but preserved by `Clone` so unions built from a configured
    /// base keep the configuration.
    index_cutoff: Option<usize>,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Only the fact sets: the derived index is build-state-dependent and
        // its posting maps print in hash order, so including it would make
        // `{:?}` output differ between `Eq`-equal instances.
        f.debug_struct("Instance")
            .field("facts", &self.facts)
            .finish()
    }
}

impl Clone for Instance {
    fn clone(&self) -> Self {
        // Index and digests are derived data; clones rebuild them lazily on
        // demand rather than paying an eager deep copy.
        Instance {
            facts: self.facts.clone(),
            index: OnceLock::new(),
            digests: OnceLock::new(),
            index_cutoff: self.index_cutoff,
        }
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.facts == other.facts
    }
}

impl Eq for Instance {}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.facts.cmp(&other.facts)
    }
}

impl Hash for Instance {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.facts.hash(state);
    }
}

impl Instance {
    /// Creates an empty instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw name-sorted relation slots, for the overlay merge-join.
    pub(crate) fn entries(&self) -> &[(RelId, BTreeSet<Tuple>)] {
        &self.facts
    }

    fn slot(&self, relation: RelId) -> std::result::Result<usize, usize> {
        self.facts.binary_search_by(|(r, _)| r.cmp(&relation))
    }

    fn tuple_set(&self, relation: RelId) -> Option<&BTreeSet<Tuple>> {
        self.slot(relation).ok().map(|i| &self.facts[i].1)
    }

    /// The mutable tuple set of a relation, creating the slot on demand.  An
    /// associated function over the raw slots so callers can hold the
    /// instance's other fields (the index) mutably at the same time.
    fn tuple_set_mut(
        facts: &mut Vec<(RelId, BTreeSet<Tuple>)>,
        relation: RelId,
    ) -> &mut BTreeSet<Tuple> {
        match facts.binary_search_by(|(r, _)| r.cmp(&relation)) {
            Ok(found) => &mut facts[found].1,
            Err(insert_at) => {
                facts.insert(insert_at, (relation, BTreeSet::new()));
                &mut facts[insert_at].1
            }
        }
    }

    /// Drops the derived index and digests; called by every mutation that
    /// does not maintain them incrementally.
    fn invalidate_index(&mut self) {
        self.index.take();
        self.digests.take();
    }

    /// Sets this instance's index cutoff: relations with fewer facts are
    /// scanned rather than indexed.  Search front-ends call this on the
    /// transition-structure bases they build, threading
    /// `EngineConfig::index_cutoff` through; instances never touched by it
    /// use the [`INDEX_CUTOFF`] default.  Purely a performance knob — it
    /// never affects which facts exist, so it is excluded from equality.
    pub fn set_index_cutoff(&mut self, cutoff: usize) {
        self.index_cutoff = Some(cutoff);
    }

    /// The per-position index of `relation`, if indexing is enabled and the
    /// relation is large enough to be worth it.  Builds the whole-instance
    /// index on first demand; afterwards [`Instance::add_fact`] and
    /// [`Instance::remove_fact`] maintain it incrementally.
    ///
    /// With no explicit cutoff configured (neither [`Instance::set_index_cutoff`]
    /// nor `ACCLTL_INDEX_CUTOFF` threaded through a search front-end), the
    /// size gate is adaptive: past the [`INDEX_CUTOFF`] floor, a relation is
    /// answered from its posting lists only while they actually discriminate
    /// ([`RelationIndex::discriminating`]); degenerate relations fall back to
    /// the scan defaults.  An explicit cutoff keeps the pure size-threshold
    /// behaviour, so the env knob still means what it says.  Either way the
    /// decision only picks a code path — results are identical by contract.
    pub(crate) fn query_index(&self, relation: RelId) -> Option<&RelationIndex> {
        if !indexing_enabled() {
            return None;
        }
        let adaptive = self.index_cutoff.is_none();
        let worth_it = |index: &RelationIndex| !adaptive || index.discriminating();
        if let Some(built) = self.index.get() {
            return built.relation(relation).filter(|idx| worth_it(idx));
        }
        if self.relation_size(relation) < self.index_cutoff.unwrap_or(INDEX_CUTOFF) {
            return None;
        }
        self.index
            .get_or_init(|| InstanceIndex::build(&self.facts))
            .relation(relation)
            .filter(|idx| worth_it(idx))
    }

    /// The name-sorted per-relation digest table, built on first demand.
    fn digest_table(&self) -> &[(RelId, RelationDigest)] {
        self.digests.get_or_init(|| {
            self.facts
                .iter()
                .map(|(rel, tuples)| {
                    let mut digest = RelationDigest::default();
                    for tuple in tuples {
                        digest.add(*rel, tuple);
                    }
                    (*rel, digest)
                })
                .collect()
        })
    }

    /// The content digest of one relation's facts (empty digest when the
    /// relation is absent).  Cached per instance; see `digests`.
    pub(crate) fn relation_digest(&self, relation: RelId) -> RelationDigest {
        let table = self.digest_table();
        match table.binary_search_by(|(r, _)| r.cmp(&relation)) {
            Ok(found) => table[found].1,
            Err(_) => RelationDigest::default(),
        }
    }

    /// The content digest of all facts.
    pub(crate) fn content_digest(&self) -> RelationDigest {
        let mut total = RelationDigest::default();
        for (_, digest) in self.digest_table() {
            total.merge(*digest);
        }
        total
    }

    /// The already-built whole-instance index, if any (never triggers a
    /// build).
    pub(crate) fn built_index(&self) -> Option<&InstanceIndex> {
        if indexing_enabled() {
            self.index.get()
        } else {
            None
        }
    }

    /// Adds a fact. Returns `true` if the fact was not already present.  When
    /// the per-position index or the digest table has been built it is
    /// maintained incrementally, so fixpoints (and overlay deltas) that only
    /// ever add facts keep their derived data live.
    pub fn add_fact(&mut self, relation: impl Into<RelId>, tuple: Tuple) -> bool {
        let relation = relation.into();
        let fact_digest = self.digests.get().is_some().then(|| {
            let mut digest = RelationDigest::default();
            digest.add(relation, &tuple);
            digest
        });
        let indexed_copy = self.index.get().is_some().then(|| tuple.clone());
        let inserted = Self::tuple_set_mut(&mut self.facts, relation).insert(tuple);
        if inserted {
            if let Some(copy) = indexed_copy {
                if let Some(index) = self.index.get_mut() {
                    index.insert_fact(relation, copy);
                }
            }
            if let Some(digest) = fact_digest {
                if let Some(table) = self.digests.get_mut() {
                    match table.binary_search_by(|(r, _)| r.cmp(&relation)) {
                        Ok(found) => table[found].1.merge(digest),
                        Err(insert_at) => table.insert(insert_at, (relation, digest)),
                    }
                }
            }
        }
        inserted
    }

    /// Adds every fact from an iterator of `(relation, tuple)` pairs.
    pub fn extend_facts<R: Into<RelId>>(&mut self, facts: impl IntoIterator<Item = (R, Tuple)>) {
        for (rel, tuple) in facts {
            self.add_fact(rel, tuple);
        }
    }

    /// Removes a fact. Returns `true` if it was present.  String keys resolve
    /// without growing the intern pool (absent names answer `false`).
    ///
    /// A built per-position index is maintained incrementally (the chase
    /// removes and re-adds facts across repair steps, and rebuilding per
    /// step is exactly what the incremental chase exists to avoid); the
    /// digest table is add-only and is dropped instead, to be rebuilt
    /// lazily.
    pub fn remove_fact(&mut self, relation: impl RelKey, tuple: &Tuple) -> bool {
        let Some(relation) = relation.resolve_rel() else {
            return false;
        };
        match self.slot(relation) {
            Ok(found) => {
                let removed = self.facts[found].1.remove(tuple);
                if self.facts[found].1.is_empty() {
                    self.facts.remove(found);
                }
                if removed {
                    if let Some(index) = self.index.get_mut() {
                        index.remove_fact(relation, tuple);
                    }
                    self.digests.take();
                }
                removed
            }
            Err(_) => false,
        }
    }

    /// True if the instance contains the given fact.  String keys resolve
    /// without growing the intern pool (absent names answer `false`).
    #[must_use]
    pub fn contains(&self, relation: impl RelKey, tuple: &Tuple) -> bool {
        relation
            .resolve_rel()
            .and_then(|rel| self.tuple_set(rel))
            .is_some_and(|set| set.contains(tuple))
    }

    /// The tuples of a relation, when the relation is non-empty.
    #[must_use]
    pub fn relation(&self, relation: impl RelKey) -> Option<&BTreeSet<Tuple>> {
        relation.resolve_rel().and_then(|rel| self.tuple_set(rel))
    }

    /// Iterates over the tuples of a relation (empty iterator when absent).
    pub fn tuples(&self, relation: impl RelKey) -> impl Iterator<Item = &Tuple> {
        relation
            .resolve_rel()
            .and_then(|rel| self.tuple_set(rel))
            .into_iter()
            .flatten()
    }

    /// Iterates over all facts as `(relation, tuple)` pairs, in relation-name
    /// order (matching the pre-interning representation).
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &Tuple)> {
        self.facts
            .iter()
            .flat_map(|(rel, tuples)| tuples.iter().map(move |t| (*rel, t)))
    }

    /// The relation ids that have at least one tuple.
    pub fn nonempty_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.facts.iter().map(|(rel, _)| *rel)
    }

    /// The number of facts across all relations.
    #[must_use]
    pub fn fact_count(&self) -> usize {
        self.facts.iter().map(|(_, set)| set.len()).sum()
    }

    /// The number of facts in one relation.
    #[must_use]
    pub fn relation_size(&self, relation: impl RelKey) -> usize {
        relation
            .resolve_rel()
            .and_then(|rel| self.tuple_set(rel))
            .map_or(0, BTreeSet::len)
    }

    /// True if the instance has no facts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The active domain: every value appearing in some fact.
    #[must_use]
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for (_, tuple) in self.facts() {
            dom.extend(tuple.values().iter().copied());
        }
        dom
    }

    /// True if every fact of `self` is also a fact of `other`.
    #[must_use]
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.facts
            .iter()
            .all(|(rel, tuples)| match other.tuple_set(*rel) {
                Some(theirs) => tuples.is_subset(theirs),
                None => false,
            })
    }

    /// The union of two instances.
    #[must_use]
    pub fn union(&self, other: &Instance) -> Instance {
        let mut result = self.clone();
        result.union_in_place(other);
        result
    }

    /// Unions `other` into `self`.
    pub fn union_in_place(&mut self, other: &Instance) {
        self.invalidate_index();
        for (rel, tuples) in &other.facts {
            let entry = Self::tuple_set_mut(&mut self.facts, *rel);
            entry.extend(tuples.iter().cloned());
        }
    }

    /// The intersection of two instances.
    #[must_use]
    pub fn intersection(&self, other: &Instance) -> Instance {
        let mut result = Instance::new();
        for (rel, tuples) in &self.facts {
            if let Some(theirs) = other.tuple_set(*rel) {
                let common: BTreeSet<Tuple> = tuples.intersection(theirs).cloned().collect();
                if !common.is_empty() {
                    result.facts.push((*rel, common));
                }
            }
        }
        // `self.facts` is name-sorted, so `result.facts` is too.
        result
    }

    /// Restricts the instance to the given relations.
    #[must_use]
    pub fn restrict_to(&self, relations: &BTreeSet<RelId>) -> Instance {
        let mut result = Instance::new();
        for (rel, tuples) in &self.facts {
            if relations.contains(rel) {
                result.facts.push((*rel, tuples.clone()));
            }
        }
        result
    }

    /// Renames relations according to `rename` (by name; unlisted relations
    /// keep their name).  Used to build the `Rpre`/`Rpost` copies of the
    /// `SchAcc` vocabulary; hot paths should prefer
    /// [`Instance::rename_relations_by`] with a precomputed id map.
    #[must_use]
    pub fn rename_relations(&self, rename: impl Fn(&str) -> String) -> Instance {
        self.rename_relations_by(|rel| RelId::new(&rename(rel.as_str())))
    }

    /// Renames relations by id.  The workhorse behind the transition-structure
    /// construction in the bounded searches: with a precomputed `RelId →
    /// RelId` map the whole operation is integer-keyed.
    #[must_use]
    pub fn rename_relations_by(&self, rename: impl Fn(RelId) -> RelId) -> Instance {
        let mut result = Instance::new();
        for (rel, tuples) in &self.facts {
            let entry = Self::tuple_set_mut(&mut result.facts, rename(*rel));
            entry.extend(tuples.iter().cloned());
        }
        result
    }

    /// Applies a value substitution to every fact (used by the chase when a
    /// labelled null is equated with another value).
    #[must_use]
    pub fn map_values(&self, f: impl Fn(&Value) -> Value) -> Instance {
        let mut result = Instance::new();
        for (rel, tuples) in &self.facts {
            let mapped: BTreeSet<Tuple> = tuples.iter().map(|t| t.map_values(&f)).collect();
            Self::tuple_set_mut(&mut result.facts, *rel).extend(mapped);
        }
        result
    }

    /// Validates every fact against a schema (arity and types).
    ///
    /// # Errors
    /// Returns the first violation found, or an error for a relation not in
    /// the schema.
    pub fn validate_against(&self, schema: &Schema) -> Result<()> {
        for (rel, tuples) in &self.facts {
            let rel_schema = schema.require_relation_id(*rel)?;
            for tuple in tuples {
                rel_schema.validate_tuple(tuple)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for (rel, tuple) in self.facts() {
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(f, "{rel}{tuple}")?;
        }
        Ok(())
    }
}

impl<R: Into<RelId>> FromIterator<(R, Tuple)> for Instance {
    fn from_iter<T: IntoIterator<Item = (R, Tuple)>>(iter: T) -> Self {
        let mut inst = Instance::new();
        inst.extend_facts(iter);
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{phone_directory_schema, RelationSchema, Schema};
    use crate::tuple;
    use crate::value::DataType;

    fn sample() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        inst
    }

    #[test]
    fn add_contains_remove_roundtrip() {
        let mut inst = Instance::new();
        let t = tuple!["a", 1];
        assert!(inst.add_fact("R", t.clone()));
        assert!(!inst.add_fact("R", t.clone()));
        assert!(inst.contains("R", &t));
        assert_eq!(inst.fact_count(), 1);
        assert!(inst.remove_fact("R", &t));
        assert!(!inst.remove_fact("R", &t));
        assert!(inst.is_empty());
    }

    #[test]
    fn union_and_intersection_behave_set_theoretically() {
        let a = sample();
        let mut b = Instance::new();
        b.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        b.add_fact("Extra", tuple![1]);

        let u = a.union(&b);
        assert_eq!(u.fact_count(), 4);
        assert!(b.is_subinstance_of(&u));
        assert!(a.is_subinstance_of(&u));

        let i = a.intersection(&b);
        assert_eq!(i.fact_count(), 1);
        assert!(i.contains("Address", &tuple!["Parks Rd", "OX13QD", "Smith", 13]));
    }

    #[test]
    fn active_domain_collects_all_values() {
        let dom = sample().active_domain();
        assert!(dom.contains(&Value::str("Smith")));
        assert!(dom.contains(&Value::Int(16)));
        // Distinct values: Smith, Jones, OX13QD, Parks Rd, 5551212, 13, 16.
        assert_eq!(dom.len(), 7);
    }

    #[test]
    fn restriction_and_renaming() {
        let inst = sample();
        let only_address = inst.restrict_to(&BTreeSet::from([RelId::new("Address")]));
        assert_eq!(only_address.relation_size("Address"), 2);
        assert_eq!(only_address.relation_size("Mobile#"), 0);

        let renamed = inst.rename_relations(|r| format!("{r}_pre"));
        assert_eq!(renamed.relation_size("Address_pre"), 2);
        assert_eq!(renamed.relation_size("Address"), 0);

        let by_id = inst.rename_relations_by(|r| {
            if r == "Address" {
                RelId::new("Addr2")
            } else {
                r
            }
        });
        assert_eq!(by_id.relation_size("Addr2"), 2);
        assert_eq!(by_id.relation_size("Mobile#"), 1);
    }

    #[test]
    fn validation_against_schema() {
        let inst = sample();
        assert!(inst.validate_against(&phone_directory_schema()).is_ok());

        let bad_schema = Schema::from_relations([
            RelationSchema::new("Mobile#", vec![DataType::Text; 4]),
            RelationSchema::new("Address", vec![DataType::Text; 3]),
        ])
        .unwrap();
        assert!(inst.validate_against(&bad_schema).is_err());
    }

    #[test]
    fn display_of_empty_instance_is_empty_set_symbol() {
        assert_eq!(Instance::new().to_string(), "∅");
    }

    #[test]
    fn digests_maintained_incrementally_match_fresh_builds() {
        let mut incremental = sample();
        // Force the digest table, then add more facts through the
        // incremental path (including a brand-new relation slot).
        let _ = incremental.content_digest();
        incremental.add_fact("Address", tuple!["High St", "OX14AB", "Lee", 2]);
        incremental.add_fact("Extra", tuple![42]);
        let mut fresh = sample();
        fresh.add_fact("Address", tuple!["High St", "OX14AB", "Lee", 2]);
        fresh.add_fact("Extra", tuple![42]);
        assert_eq!(incremental.content_digest(), fresh.content_digest());
        assert_eq!(
            incremental.relation_digest(RelId::new("Extra")),
            fresh.relation_digest(RelId::new("Extra"))
        );
        // Duplicate adds leave the digest untouched.
        assert!(!incremental.add_fact("Extra", tuple![42]));
        assert_eq!(incremental.content_digest(), fresh.content_digest());
        // Removal drops the table; the rebuild agrees with a fresh instance.
        assert!(incremental.remove_fact("Extra", &tuple![42]));
        assert!(fresh.remove_fact("Extra", &tuple![42]));
        assert_eq!(incremental.content_digest(), fresh.content_digest());
    }

    #[test]
    fn index_maintained_across_removal_matches_fresh_build() {
        let mut incremental = Instance::new();
        for i in 0..20i64 {
            incremental.add_fact("R", tuple![i % 4, i]);
        }
        // Force the index, then mutate through the incremental paths.
        let rel = RelId::new("R");
        assert!(incremental.query_index(rel).is_some());
        assert!(incremental.remove_fact("R", &tuple![1, 5]));
        assert!(incremental.remove_fact("R", &tuple![2, 14]));
        incremental.add_fact("R", tuple![1, 5]);
        let mut fresh = Instance::new();
        for i in 0..20i64 {
            if i != 14 {
                fresh.add_fact("R", tuple![i % 4, i]);
            }
        }
        assert_eq!(incremental, fresh);
        let maintained: Vec<Tuple> = incremental
            .query_index(rel)
            .expect("index stays live across removals")
            .matching(0, &Value::Int(1))
            .cloned()
            .collect();
        let scanned: Vec<Tuple> = fresh
            .tuples("R")
            .filter(|t| t.get(0) == Some(&Value::Int(1)))
            .cloned()
            .collect();
        assert_eq!(maintained, scanned);
    }

    #[test]
    fn adaptive_cutoff_vetoes_degenerate_relations_unless_configured() {
        // A constant column plus two binary ones: posting lists average more
        // than half the relation, so the adaptive gate prefers scanning.
        let mut inst = Instance::new();
        for i in 0..16i64 {
            inst.add_fact("Blunt", tuple!["x", i & 1, (i >> 1) & 1, i]);
        }
        // ... except this one has a distinct last column, which keeps it
        // discriminating; drop to the genuinely degenerate shape.
        let mut blunt = Instance::new();
        for i in 0..8i64 {
            blunt.add_fact("Blunt", tuple!["x", i & 1, (i >> 1) & 1, (i >> 2) & 1]);
        }
        let rel = RelId::new("Blunt");
        assert!(blunt.query_index(rel).is_none(), "adaptive gate scans");
        // An explicit cutoff keeps the historical pure size-threshold
        // behaviour (the env knob must keep meaning what it says).
        let mut configured = blunt.clone();
        configured.set_index_cutoff(4);
        assert!(configured.query_index(rel).is_some());
        // The sharp relation is indexed either way.
        assert!(inst.query_index(rel).is_some());
    }

    #[test]
    fn index_cutoff_is_a_perf_knob_not_content() {
        let mut configured = sample();
        configured.set_index_cutoff(1);
        assert_eq!(configured, sample());
        // Clones keep the configuration.
        let clone = configured.clone();
        assert_eq!(format!("{configured:?}"), format!("{:?}", sample()));
        drop(clone);
    }
}
