//! Database instances: finite collections of tuples per relation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A database instance.
///
/// Facts are stored in ordered sets keyed by relation name, so iteration order
/// (and therefore every algorithm built on top) is deterministic.  An instance
/// is not tied to a [`Schema`]; validation against a schema is explicit via
/// [`Instance::validate_against`], because the paper frequently works with
/// *extended* vocabularies (the `SchAcc` pre/post copies, the Datalog
/// `Background`/`View` predicates) that are derived from a base schema.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instance {
    facts: BTreeMap<String, BTreeSet<Tuple>>,
}

impl Instance {
    /// Creates an empty instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fact. Returns `true` if the fact was not already present.
    pub fn add_fact(&mut self, relation: impl Into<String>, tuple: Tuple) -> bool {
        self.facts.entry(relation.into()).or_default().insert(tuple)
    }

    /// Adds every fact from an iterator of `(relation, tuple)` pairs.
    pub fn extend_facts(&mut self, facts: impl IntoIterator<Item = (String, Tuple)>) {
        for (rel, tuple) in facts {
            self.add_fact(rel, tuple);
        }
    }

    /// Removes a fact. Returns `true` if it was present.
    pub fn remove_fact(&mut self, relation: &str, tuple: &Tuple) -> bool {
        match self.facts.get_mut(relation) {
            Some(set) => {
                let removed = set.remove(tuple);
                if set.is_empty() {
                    self.facts.remove(relation);
                }
                removed
            }
            None => false,
        }
    }

    /// True if the instance contains the given fact.
    #[must_use]
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        self.facts
            .get(relation)
            .is_some_and(|set| set.contains(tuple))
    }

    /// The tuples of a relation (empty slice view when the relation is empty).
    #[must_use]
    pub fn relation(&self, relation: &str) -> Option<&BTreeSet<Tuple>> {
        self.facts.get(relation)
    }

    /// Iterates over the tuples of a relation (empty iterator when absent).
    pub fn tuples(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.facts.get(relation).into_iter().flatten()
    }

    /// Iterates over all facts as `(relation, tuple)` pairs.
    pub fn facts(&self) -> impl Iterator<Item = (&str, &Tuple)> {
        self.facts
            .iter()
            .flat_map(|(rel, tuples)| tuples.iter().map(move |t| (rel.as_str(), t)))
    }

    /// The relation names that have at least one tuple.
    pub fn nonempty_relations(&self) -> impl Iterator<Item = &str> {
        self.facts.keys().map(String::as_str)
    }

    /// The number of facts across all relations.
    #[must_use]
    pub fn fact_count(&self) -> usize {
        self.facts.values().map(BTreeSet::len).sum()
    }

    /// The number of facts in one relation.
    #[must_use]
    pub fn relation_size(&self, relation: &str) -> usize {
        self.facts.get(relation).map_or(0, BTreeSet::len)
    }

    /// True if the instance has no facts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.facts.values().all(BTreeSet::is_empty)
    }

    /// The active domain: every value appearing in some fact.
    #[must_use]
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for (_, tuple) in self.facts() {
            dom.extend(tuple.values().iter().cloned());
        }
        dom
    }

    /// True if every fact of `self` is also a fact of `other`.
    #[must_use]
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.facts().all(|(rel, t)| other.contains(rel, t))
    }

    /// The union of two instances.
    #[must_use]
    pub fn union(&self, other: &Instance) -> Instance {
        let mut result = self.clone();
        result.union_in_place(other);
        result
    }

    /// Unions `other` into `self`.
    pub fn union_in_place(&mut self, other: &Instance) {
        for (rel, tuples) in &other.facts {
            let entry = self.facts.entry(rel.clone()).or_default();
            entry.extend(tuples.iter().cloned());
        }
    }

    /// The intersection of two instances.
    #[must_use]
    pub fn intersection(&self, other: &Instance) -> Instance {
        let mut result = Instance::new();
        for (rel, tuple) in self.facts() {
            if other.contains(rel, tuple) {
                result.add_fact(rel.to_owned(), tuple.clone());
            }
        }
        result
    }

    /// Restricts the instance to the given relation names.
    #[must_use]
    pub fn restrict_to(&self, relations: &BTreeSet<String>) -> Instance {
        let mut result = Instance::new();
        for (rel, tuples) in &self.facts {
            if relations.contains(rel) {
                result.facts.insert(rel.clone(), tuples.clone());
            }
        }
        result
    }

    /// Renames relations according to `rename` (unlisted relations keep their
    /// name).  Used to build the `Rpre`/`Rpost` copies of the `SchAcc`
    /// vocabulary.
    #[must_use]
    pub fn rename_relations(&self, rename: &dyn Fn(&str) -> String) -> Instance {
        let mut result = Instance::new();
        for (rel, tuples) in &self.facts {
            let new_name = rename(rel);
            let entry = result.facts.entry(new_name).or_default();
            entry.extend(tuples.iter().cloned());
        }
        result
    }

    /// Applies a value substitution to every fact (used by the chase when a
    /// labelled null is equated with another value).
    #[must_use]
    pub fn map_values(&self, f: &dyn Fn(&Value) -> Value) -> Instance {
        let mut result = Instance::new();
        for (rel, tuple) in self.facts() {
            result.add_fact(rel.to_owned(), tuple.map_values(f));
        }
        result
    }

    /// Validates every fact against a schema (arity and types).
    ///
    /// # Errors
    /// Returns the first violation found, or an error for a relation not in
    /// the schema.
    pub fn validate_against(&self, schema: &Schema) -> Result<()> {
        for (rel, tuple) in self.facts() {
            let rel_schema = schema.require_relation(rel)?;
            rel_schema.validate_tuple(tuple)?;
        }
        Ok(())
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for (rel, tuple) in self.facts() {
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(f, "{rel}{tuple}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, Tuple)> for Instance {
    fn from_iter<T: IntoIterator<Item = (String, Tuple)>>(iter: T) -> Self {
        let mut inst = Instance::new();
        inst.extend_facts(iter);
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{phone_directory_schema, RelationSchema, Schema};
    use crate::tuple;
    use crate::value::DataType;

    fn sample() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        inst
    }

    #[test]
    fn add_contains_remove_roundtrip() {
        let mut inst = Instance::new();
        let t = tuple!["a", 1];
        assert!(inst.add_fact("R", t.clone()));
        assert!(!inst.add_fact("R", t.clone()));
        assert!(inst.contains("R", &t));
        assert_eq!(inst.fact_count(), 1);
        assert!(inst.remove_fact("R", &t));
        assert!(!inst.remove_fact("R", &t));
        assert!(inst.is_empty());
    }

    #[test]
    fn union_and_intersection_behave_set_theoretically() {
        let a = sample();
        let mut b = Instance::new();
        b.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        b.add_fact("Extra", tuple![1]);

        let u = a.union(&b);
        assert_eq!(u.fact_count(), 4);
        assert!(b.is_subinstance_of(&u));
        assert!(a.is_subinstance_of(&u));

        let i = a.intersection(&b);
        assert_eq!(i.fact_count(), 1);
        assert!(i.contains("Address", &tuple!["Parks Rd", "OX13QD", "Smith", 13]));
    }

    #[test]
    fn active_domain_collects_all_values() {
        let dom = sample().active_domain();
        assert!(dom.contains(&Value::str("Smith")));
        assert!(dom.contains(&Value::Int(16)));
        // Distinct values: Smith, Jones, OX13QD, Parks Rd, 5551212, 13, 16.
        assert_eq!(dom.len(), 7);
    }

    #[test]
    fn restriction_and_renaming() {
        let inst = sample();
        let only_address = inst.restrict_to(&BTreeSet::from(["Address".to_owned()]));
        assert_eq!(only_address.relation_size("Address"), 2);
        assert_eq!(only_address.relation_size("Mobile#"), 0);

        let renamed = inst.rename_relations(&|r| format!("{r}_pre"));
        assert_eq!(renamed.relation_size("Address_pre"), 2);
        assert_eq!(renamed.relation_size("Address"), 0);
    }

    #[test]
    fn validation_against_schema() {
        let inst = sample();
        assert!(inst.validate_against(&phone_directory_schema()).is_ok());

        let bad_schema = Schema::from_relations([
            RelationSchema::new("Mobile#", vec![DataType::Text; 4]),
            RelationSchema::new("Address", vec![DataType::Text; 3]),
        ])
        .unwrap();
        assert!(inst.validate_against(&bad_schema).is_err());
    }

    #[test]
    fn display_of_empty_instance_is_empty_set_symbol() {
        assert_eq!(Instance::new().to_string(), "∅");
    }
}
