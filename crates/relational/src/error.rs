//! Error type shared across the relational substrate.

use std::fmt;

/// Errors produced while building or manipulating relational objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A relation name was used that is not declared in the schema.
    UnknownRelation(String),
    /// A tuple of the wrong arity was supplied for a relation.
    ArityMismatch {
        /// The relation involved.
        relation: String,
        /// The declared arity.
        expected: usize,
        /// The arity that was supplied.
        found: usize,
    },
    /// A value of the wrong datatype was supplied for a position.
    TypeMismatch {
        /// The relation involved.
        relation: String,
        /// The 1-based position.
        position: usize,
    },
    /// A position index was out of range for a relation.
    PositionOutOfRange {
        /// The relation involved.
        relation: String,
        /// The offending 1-based position.
        position: usize,
    },
    /// A relation was declared twice.
    DuplicateRelation(String),
    /// A Datalog rule is unsafe (a head variable does not occur in the body).
    UnsafeRule(String),
    /// A query or formula is malformed.
    MalformedQuery(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            RelationalError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected}, found {found}"
            ),
            RelationalError::TypeMismatch { relation, position } => {
                write!(f, "type mismatch for `{relation}` at position {position}")
            }
            RelationalError::PositionOutOfRange { relation, position } => {
                write!(f, "position {position} out of range for `{relation}`")
            }
            RelationalError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared twice")
            }
            RelationalError::UnsafeRule(msg) => write!(f, "unsafe Datalog rule: {msg}"),
            RelationalError::MalformedQuery(msg) => write!(f, "malformed query: {msg}"),
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = RelationalError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity mismatch"));
        assert!(RelationalError::UnknownRelation("X".into())
            .to_string()
            .contains("X"));
        assert!(RelationalError::UnsafeRule("v not bound".into())
            .to_string()
            .contains("unsafe"));
    }
}
