//! Containment of a Datalog program in a positive query (UCQ).
//!
//! Proposition 4.11 of the paper generalises Chaudhuri–Vardi: containment of
//! a Datalog program (with constants) in a positive first-order sentence is
//! decidable in 2EXPTIME.  The reduction from A-automaton emptiness (Lemma
//! 4.10) produces exactly such containment problems.
//!
//! This module implements the containment test by *unfolding*: a Datalog
//! program is contained in a UCQ iff every expansion (proof-tree unfolding of
//! the goal into extensional atoms) is contained in the UCQ as a conjunctive
//! query.  Expansions are enumerated breadth-first up to a configurable depth
//! and count.  The verdict is exact whenever the enumeration exhausts all
//! expansions (always the case for non-recursive programs, and for the
//! stage-structured programs produced by the A-automaton reduction once the
//! unfolding depth exceeds the automaton's stage count times its guard size);
//! otherwise the verdict honestly reports that the bound was reached.
//!
//! Non-containment is always sound: a single expansion not contained in the
//! query is a counterexample regardless of any bound.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

use crate::atom::Atom;
use crate::containment::cq_contained_in_ucq;
use crate::cq::ConjunctiveQuery;
use crate::datalog::DatalogProgram;
use crate::symbols::VarId;
use crate::term::Term;
use crate::ucq::UnionOfCqs;

/// Configuration of the unfolding enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnfoldingConfig {
    /// Maximum number of rule applications along one expansion.
    pub max_depth: usize,
    /// Maximum number of complete expansions examined.
    pub max_expansions: usize,
    /// Maximum number of atoms in a partial expansion (guards against
    /// blow-up on wide rules).
    pub max_atoms: usize,
}

impl Default for UnfoldingConfig {
    fn default() -> Self {
        UnfoldingConfig {
            max_depth: 12,
            max_expansions: 20_000,
            max_atoms: 64,
        }
    }
}

/// The verdict of the bounded containment test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentVerdict {
    /// Every expansion is contained in the query and the enumeration was
    /// exhaustive: the program is contained in the query.
    Contained,
    /// A concrete expansion witnesses non-containment.
    NotContained {
        /// The expansion (a conjunctive query over the extensional predicates)
        /// that is not contained in the positive query.
        witness: ConjunctiveQuery,
    },
    /// All expansions examined so far are contained, but the enumeration hit
    /// the configured depth/count bound before exhausting the (recursive)
    /// program, so containment could not be certified.
    BoundReached,
}

impl ContainmentVerdict {
    /// True if the verdict certifies containment.
    #[must_use]
    pub fn is_contained(&self) -> bool {
        matches!(self, ContainmentVerdict::Contained)
    }

    /// True if the verdict certifies non-containment.
    #[must_use]
    pub fn is_not_contained(&self) -> bool {
        matches!(self, ContainmentVerdict::NotContained { .. })
    }
}

impl fmt::Display for ContainmentVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentVerdict::Contained => write!(f, "contained"),
            ContainmentVerdict::NotContained { witness } => {
                write!(f, "not contained (witness expansion: {witness})")
            }
            ContainmentVerdict::BoundReached => write!(f, "bound reached (undetermined)"),
        }
    }
}

/// A partial expansion: a conjunction of atoms, some of which may still be
/// intensional, plus the depth at which it was produced.
#[derive(Debug, Clone)]
struct PartialExpansion {
    atoms: Vec<Atom>,
    depth: usize,
}

/// Tests whether the Datalog program is contained in the UCQ, enumerating
/// expansions up to the configured bounds.
///
/// The goal predicate of the program and the UCQ disjuncts must have the same
/// head arity (the goal's arity); the expansions' heads are the goal
/// variables in order.
#[must_use]
pub fn datalog_contained_in_ucq(
    program: &DatalogProgram,
    query: &UnionOfCqs,
    config: &UnfoldingConfig,
) -> ContainmentVerdict {
    let goal_arity = goal_arity(program);
    let idb = program.intensional_predicates();

    // Head variables of every expansion: g0, g1, ...
    let head_vars: Vec<VarId> = (0..goal_arity)
        .map(|i| VarId::new(&format!("g{i}")))
        .collect();
    let goal_atom = Atom::new(
        program.goal(),
        head_vars.iter().map(|v| Term::Var(*v)).collect(),
    );

    let mut queue = VecDeque::new();
    queue.push_back(PartialExpansion {
        atoms: vec![goal_atom],
        depth: 0,
    });

    let mut fresh_counter = 0usize;
    let mut examined = 0usize;
    let mut exhausted = true;

    while let Some(partial) = queue.pop_front() {
        // Find the first intensional atom, if any.
        let position = partial
            .atoms
            .iter()
            .position(|a| idb.contains(&a.predicate));
        match position {
            None => {
                // Complete expansion: all atoms are extensional.
                examined += 1;
                if examined > config.max_expansions {
                    return ContainmentVerdict::BoundReached;
                }
                let expansion = ConjunctiveQuery::with_head(head_vars.clone(), partial.atoms);
                if !cq_contained_in_ucq(&expansion, query) {
                    return ContainmentVerdict::NotContained { witness: expansion };
                }
            }
            Some(pos) => {
                if partial.depth >= config.max_depth || partial.atoms.len() > config.max_atoms {
                    exhausted = false;
                    continue;
                }
                let target = partial.atoms[pos].clone();
                let mut rest: Vec<Atom> = partial.atoms.clone();
                rest.remove(pos);

                let mut any_rule_applied = false;
                for rule in program.rules() {
                    if rule.head.predicate != target.predicate
                        || rule.head.arity() != target.arity()
                    {
                        continue;
                    }
                    fresh_counter += 1;
                    let tag = fresh_counter;
                    let renamed_head = rule.head.rename_vars(|v| format!("{v}\u{2032}{tag}"));
                    let renamed_body: Vec<Atom> = rule
                        .body
                        .iter()
                        .map(|a| a.rename_vars(|v| format!("{v}\u{2032}{tag}")))
                        .collect();
                    let Some(mgu) = unify(&target.terms, &renamed_head.terms) else {
                        continue;
                    };
                    any_rule_applied = true;
                    let apply = |a: &Atom| a.substitute(|v| mgu.get(&v).copied());
                    let mut new_atoms: Vec<Atom> = rest.iter().map(apply).collect();
                    new_atoms.extend(renamed_body.iter().map(apply));
                    queue.push_back(PartialExpansion {
                        atoms: new_atoms,
                        depth: partial.depth + 1,
                    });
                }
                // A partial expansion whose intensional atom unifies with no
                // rule head derives nothing; it is simply dropped (it denotes
                // the empty query).
                let _ = any_rule_applied;
            }
        }
    }

    if exhausted {
        ContainmentVerdict::Contained
    } else {
        ContainmentVerdict::BoundReached
    }
}

fn goal_arity(program: &DatalogProgram) -> usize {
    program
        .rules()
        .iter()
        .find(|r| r.head.predicate == program.goal())
        .map(|r| r.head.arity())
        .unwrap_or(0)
}

/// Most general unifier of two term lists (no function symbols, so this is
/// simple simultaneous unification of variables and constants).
fn unify(left: &[Term], right: &[Term]) -> Option<BTreeMap<VarId, Term>> {
    if left.len() != right.len() {
        return None;
    }
    let mut subst: BTreeMap<VarId, Term> = BTreeMap::new();

    fn resolve(term: &Term, subst: &BTreeMap<VarId, Term>) -> Term {
        let mut current = *term;
        while let Term::Var(v) = &current {
            match subst.get(v) {
                Some(next) if next != &current => current = *next,
                _ => break,
            }
        }
        current
    }

    for (l, r) in left.iter().zip(right) {
        let lr = resolve(l, &subst);
        let rr = resolve(r, &subst);
        match (lr, rr) {
            (Term::Const(a), Term::Const(b)) => {
                if a != b {
                    return None;
                }
            }
            // Prefer binding the right-hand (freshly renamed rule) variable so
            // that the goal/target terms — in particular expansion head
            // variables — survive the substitution unchanged.
            (other, Term::Var(v)) => {
                if Term::Var(v) != other {
                    subst.insert(v, other);
                }
            }
            (Term::Var(v), other) => {
                subst.insert(v, other);
            }
        }
    }
    // Fully resolve the bindings so that applying the substitution once is
    // enough (no chains like y → x → 2 remain).
    let resolved: BTreeMap<VarId, Term> = subst
        .keys()
        .map(|v| (*v, resolve(&Term::Var(*v), &subst)))
        .collect();
    Some(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::DatalogRule;
    use crate::{atom, cq};

    fn reachability_program(goal_from: &str, goal_to: &str) -> DatalogProgram {
        DatalogProgram::new(
            vec![
                DatalogRule::new(atom!("T"; x, y), vec![atom!("E"; x, y)]),
                DatalogRule::new(atom!("T"; x, z), vec![atom!("E"; x, y), atom!("T"; y, z)]),
                DatalogRule::new(
                    atom!("Goal"),
                    vec![Atom::new(
                        "T",
                        vec![Term::constant(goal_from), Term::constant(goal_to)],
                    )],
                ),
            ],
            "Goal",
        )
        .unwrap()
    }

    #[test]
    fn nonrecursive_program_containment_is_exact() {
        // Goal() :- E(x,y), F(y) is contained in ∃x∃y E(x,y) but not in
        // ∃x F(x), G(x).
        let program = DatalogProgram::new(
            vec![DatalogRule::new(
                atom!("Goal"),
                vec![atom!("E"; x, y), atom!("F"; y)],
            )],
            "Goal",
        )
        .unwrap();
        let bigger = UnionOfCqs::single(cq!(<- atom!("E"; x, y)));
        assert_eq!(
            datalog_contained_in_ucq(&program, &bigger, &UnfoldingConfig::default()),
            ContainmentVerdict::Contained
        );
        let unrelated = UnionOfCqs::single(cq!(<- atom!("F"; x), atom!("G"; x)));
        assert!(matches!(
            datalog_contained_in_ucq(&program, &unrelated, &UnfoldingConfig::default()),
            ContainmentVerdict::NotContained { .. }
        ));
    }

    #[test]
    fn recursive_program_not_contained_has_finite_witness() {
        // Reachability from "a" to "b"; the one-step expansion E(a,b) is not
        // contained in a query demanding a two-step path.
        let program = reachability_program("a", "b");
        let two_step =
            UnionOfCqs::single(cq!(<- atom!("E"; x, y), atom!("E"; y, z), atom!("E"; z, w)));
        let verdict = datalog_contained_in_ucq(&program, &two_step, &UnfoldingConfig::default());
        assert!(verdict.is_not_contained());
    }

    #[test]
    fn recursive_program_contained_in_weaker_query() {
        // Every expansion of reachability contains at least one E-edge, so the
        // program is contained in ∃x∃y E(x, y).  The program is recursive, so
        // with the default depth bound the enumeration cannot be exhaustive,
        // but every examined expansion is contained — the verdict must be
        // BoundReached (honest) rather than a false NotContained.
        let program = reachability_program("a", "b");
        let some_edge = UnionOfCqs::single(cq!(<- atom!("E"; x, y)));
        let verdict = datalog_contained_in_ucq(
            &program,
            &some_edge,
            &UnfoldingConfig {
                max_depth: 6,
                max_expansions: 1000,
                max_atoms: 32,
            },
        );
        assert_eq!(verdict, ContainmentVerdict::BoundReached);
    }

    #[test]
    fn constants_restrict_expansions() {
        // Goal :- T(a, b) where the only rule for T requires the constant "a"
        // in the first position; containment in ∃y E("a", y) holds.
        let program = reachability_program("a", "b");
        let from_a = UnionOfCqs::single(cq!(<- atom!("E"; @"a", y)));
        let verdict = datalog_contained_in_ucq(&program, &from_a, &UnfoldingConfig::default());
        // Not every expansion starts with E("a", ...)?  It does: the first
        // edge of every expansion starts at "a".  But deeper expansions keep
        // the bound from being exhausted, so we accept either Contained (if
        // exhausted) or BoundReached; what must NOT happen is NotContained.
        assert!(!verdict.is_not_contained());
    }

    #[test]
    fn non_containment_with_constants_is_detected() {
        let program = reachability_program("a", "b");
        let from_c = UnionOfCqs::single(cq!(<- atom!("E"; @"c", y)));
        let verdict = datalog_contained_in_ucq(&program, &from_c, &UnfoldingConfig::default());
        assert!(verdict.is_not_contained());
    }

    #[test]
    fn goal_with_head_variables() {
        // Goal(x) :- P(x); P(x) :- Q(x). Contained in Q(x) (same head).
        let program = DatalogProgram::new(
            vec![
                DatalogRule::new(atom!("Goal"; x), vec![atom!("P"; x)]),
                DatalogRule::new(atom!("P"; x), vec![atom!("Q"; x)]),
            ],
            "Goal",
        )
        .unwrap();
        let query = UnionOfCqs::single(cq!([g0] <- atom!("Q"; g0)));
        assert_eq!(
            datalog_contained_in_ucq(&program, &query, &UnfoldingConfig::default()),
            ContainmentVerdict::Contained
        );
        let wrong = UnionOfCqs::single(cq!([g0] <- atom!("R"; g0)));
        assert!(
            datalog_contained_in_ucq(&program, &wrong, &UnfoldingConfig::default())
                .is_not_contained()
        );
    }

    #[test]
    fn containment_in_union_uses_any_disjunct() {
        let program = DatalogProgram::new(
            vec![
                DatalogRule::new(atom!("Goal"), vec![atom!("A"; x)]),
                DatalogRule::new(atom!("Goal"), vec![atom!("B"; x)]),
            ],
            "Goal",
        )
        .unwrap();
        let union = UnionOfCqs::new(vec![cq!(<- atom!("A"; x)), cq!(<- atom!("B"; x))]);
        assert_eq!(
            datalog_contained_in_ucq(&program, &union, &UnfoldingConfig::default()),
            ContainmentVerdict::Contained
        );
        let only_a = UnionOfCqs::single(cq!(<- atom!("A"; x)));
        assert!(
            datalog_contained_in_ucq(&program, &only_a, &UnfoldingConfig::default())
                .is_not_contained()
        );
    }

    #[test]
    fn unify_handles_shared_variables_and_constants() {
        let lhs = vec![Term::var("x"), Term::var("x"), Term::constant(1)];
        let rhs = vec![Term::constant(2), Term::var("y"), Term::var("z")];
        let mgu = unify(&lhs, &rhs).unwrap();
        assert_eq!(mgu.get(&VarId::new("x")), Some(&Term::constant(2)));
        // y must resolve to 2 through x.
        let resolved_y = match mgu.get(&VarId::new("y")) {
            Some(Term::Var(v)) => mgu.get(v).copied(),
            other => other.copied(),
        };
        assert_eq!(resolved_y, Some(Term::constant(2)));
        assert_eq!(mgu.get(&VarId::new("z")), Some(&Term::constant(1)));

        assert!(unify(&[Term::constant(1)], &[Term::constant(2)]).is_none());
        assert!(unify(&[Term::var("x")], &[Term::var("x"), Term::var("y")]).is_none());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(ContainmentVerdict::Contained.to_string(), "contained");
        assert!(ContainmentVerdict::BoundReached
            .to_string()
            .contains("bound"));
    }
}
