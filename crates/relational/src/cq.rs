//! Conjunctive queries: evaluation, homomorphisms, canonical databases.
//!
//! Conjunctive queries (CQs) are the paper's basic query class: query
//! containment under access patterns (Example 2.2), long-term relevance
//! (Example 2.3) and the canonical-database arguments behind the Boundedness
//! Lemma (Lemma 4.13) all manipulate CQs through homomorphisms.
//!
//! The homomorphism-extension inner loop operates purely on interned ids:
//! variables are [`VarId`]s, relation lookups go through [`RelId`]s, and
//! binding a variable copies a `u32`-backed [`Value`] instead of cloning a
//! heap string.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Index;

use crate::atom::Atom;
use crate::error::RelationalError;
use crate::instance::Instance;
use crate::overlay::InstanceView;
use crate::symbols::{IdMap, RelId, VarId, VarKey};
use crate::term::Term;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A variable assignment: interned variable → value.
///
/// Backed by the id-keyed sorted-vec [`IdMap`]: the homomorphism-extension
/// inner loop binds, checks and unbinds variables constantly, and on the
/// handful of variables a query has, a binary search over packed `u32`s
/// beats any node-based map — no string is ever compared.  Equality is
/// set-of-bindings equality (the canonical sorted form makes the derive
/// correct); iteration order follows raw intern ids and carries no meaning
/// across symbol tables.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assignment {
    entries: IdMap<(VarId, Value)>,
}

impl Assignment {
    /// Creates an empty assignment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The value bound to a variable, if any.  String keys resolve without
    /// growing the intern pool (unknown names answer `None`).
    #[must_use]
    pub fn get(&self, var: impl VarKey) -> Option<&Value> {
        let var = var.resolve_var()?;
        self.entries.get(var.id()).map(|(_, value)| value)
    }

    /// Binds a variable, returning the previous binding if present.
    pub fn insert(&mut self, var: impl Into<VarId>, value: Value) -> Option<Value> {
        let var = var.into();
        self.entries
            .insert(var.id(), (var, value))
            .map(|(_, previous)| previous)
    }

    /// Removes a binding.
    pub fn remove(&mut self, var: impl VarKey) -> Option<Value> {
        let var = var.resolve_var()?;
        self.entries.remove(var.id()).map(|(_, value)| value)
    }

    /// True if the variable is bound.
    #[must_use]
    pub fn contains_var(&self, var: impl VarKey) -> bool {
        var.resolve_var()
            .is_some_and(|v| self.entries.get(v.id()).is_some())
    }

    /// Number of bound variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the bindings (in raw intern-id order).
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Value)> {
        self.entries.values().map(|(v, value)| (*v, value))
    }
}

impl<V: Into<VarId>> FromIterator<(V, Value)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (V, Value)>>(iter: T) -> Self {
        let mut assignment = Assignment::new();
        for (v, value) in iter {
            assignment.insert(v, value);
        }
        assignment
    }
}

impl Index<&str> for Assignment {
    type Output = Value;

    fn index(&self, var: &str) -> &Value {
        self.get(var).expect("variable not bound in assignment")
    }
}

impl Index<VarId> for Assignment {
    type Output = Value;

    fn index(&self, var: VarId) -> &Value {
        self.get(var).expect("variable not bound in assignment")
    }
}

/// A conjunctive query.
///
/// The `head` lists the distinguished (free) variables; a query with an empty
/// head is a boolean query.  All other variables are implicitly existentially
/// quantified.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConjunctiveQuery {
    /// The distinguished variables (free variables of the query).
    pub head: Vec<VarId>,
    /// The body atoms, implicitly conjoined.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a boolean conjunctive query.
    #[must_use]
    pub fn boolean(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            head: Vec::new(),
            atoms,
        }
    }

    /// Creates a conjunctive query with distinguished variables.
    #[must_use]
    pub fn with_head(head: Vec<impl Into<VarId>>, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            head: head.into_iter().map(Into::into).collect(),
            atoms,
        }
    }

    /// True if the query has no distinguished variables.
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The set of all variables occurring in the body.
    #[must_use]
    pub fn body_variables(&self) -> BTreeSet<VarId> {
        self.atoms.iter().flat_map(|a| a.variables()).collect()
    }

    /// The set of constants occurring in the body.
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        self.atoms.iter().flat_map(|a| a.constants()).collect()
    }

    /// The relations mentioned by the query.
    #[must_use]
    pub fn relations(&self) -> BTreeSet<RelId> {
        self.atoms.iter().map(|a| a.predicate).collect()
    }

    /// Checks the query is safe: every head variable occurs in the body.
    ///
    /// # Errors
    /// Returns [`RelationalError::MalformedQuery`] naming the offending
    /// variable.
    pub fn validate(&self) -> Result<()> {
        let body_vars = self.body_variables();
        for v in &self.head {
            if !body_vars.contains(v) {
                return Err(RelationalError::MalformedQuery(format!(
                    "head variable `{v}` does not occur in the body"
                )));
            }
        }
        Ok(())
    }

    /// The total number of atoms (a standard size measure).
    #[must_use]
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// Renames every variable of the query (head and body) with `f`.
    #[must_use]
    pub fn rename_vars(&self, f: impl Fn(&str) -> String) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self
                .head
                .iter()
                .map(|v| VarId::new(&f(v.as_str())))
                .collect(),
            atoms: self.atoms.iter().map(|a| a.rename_vars(&f)).collect(),
        }
    }

    /// Renames every predicate of the query with `f` (used to build the
    /// `Q^pre`/`Q^post` variants of Section 2).
    #[must_use]
    pub fn rename_predicates(&self, f: impl Fn(&str) -> String) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self.head.clone(),
            atoms: self
                .atoms
                .iter()
                .map(|a| a.with_predicate(RelId::new(&f(a.predicate.as_str()))))
                .collect(),
        }
    }

    /// Evaluates the query on an instance (or any [`InstanceView`], such as a
    /// configuration overlay), returning the set of head-variable bindings
    /// projected as tuples.  A boolean query returns either the empty set or
    /// the singleton set containing the empty tuple.
    #[must_use]
    pub fn evaluate(&self, instance: &impl InstanceView) -> BTreeSet<Tuple> {
        let mut results = BTreeSet::new();
        for_each_homomorphism(
            &self.atoms,
            instance,
            &Assignment::new(),
            &mut |assignment| {
                let tuple: Tuple = self
                    .head
                    .iter()
                    .map(|v| {
                        assignment
                            .get(*v)
                            .copied()
                            .expect("validated query: head variables are bound by the body")
                    })
                    .collect();
                results.insert(tuple);
                // Keep enumerating: we want all answers.
                false
            },
        );
        results
    }

    /// True if the (boolean) query holds on the instance.  For a non-boolean
    /// query this means "has at least one answer".
    #[must_use]
    pub fn holds(&self, instance: &impl InstanceView) -> bool {
        exists_homomorphism(&self.atoms, instance, &Assignment::new())
    }

    /// Finds one homomorphism from the query body into the instance extending
    /// the given partial assignment, if any.
    #[must_use]
    pub fn find_homomorphism(
        &self,
        instance: &impl InstanceView,
        initial: &Assignment,
    ) -> Option<Assignment> {
        let mut found = None;
        for_each_homomorphism(&self.atoms, instance, initial, &mut |assignment| {
            found = Some(assignment.clone());
            true
        });
        found
    }

    /// The canonical database (frozen body) of the query together with the
    /// freezing assignment variable → frozen constant.
    ///
    /// Constants in the query are kept as themselves; every variable `x` is
    /// frozen to a distinct labelled value that cannot collide with ordinary
    /// values.
    #[must_use]
    pub fn canonical_instance(&self) -> (Instance, Assignment) {
        let mut freeze = Assignment::new();
        for (i, var) in self.body_variables().iter().enumerate() {
            freeze.insert(*var, frozen_value(var.as_str(), i));
        }
        let mut instance = Instance::new();
        for atom in &self.atoms {
            let tuple: Tuple = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => freeze[*v],
                    Term::Const(c) => *c,
                })
                .collect();
            instance.add_fact(atom.predicate, tuple);
        }
        (instance, freeze)
    }
}

/// The frozen constant representing variable `var` in a canonical database.
#[must_use]
pub fn frozen_value(var: &str, index: usize) -> Value {
    Value::str(format!("\u{2744}{index}_{var}"))
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Enumerates homomorphisms from `atoms` into `instance` extending `initial`.
///
/// Generic over [`InstanceView`], so the same search runs on a plain
/// [`Instance`] and on a configuration overlay without materializing it.
/// The callback is invoked once per homomorphism; returning `true` stops the
/// enumeration early (used by existence checks).
///
/// Atom order is chosen *dynamically*: at every level the search picks the
/// remaining atom with the fewest estimated candidates — the relation size
/// for unconstrained atoms, the minimum per-position selectivity
/// ([`InstanceView::selectivity`]) over its bound positions (constants and
/// already-assigned variables) for constrained ones — then enumerates that
/// atom's candidates via [`InstanceView::tuples_matching_all`], which
/// intersects posting
/// lists when the relation is indexed and falls back to a filtered scan
/// otherwise.  Estimates are exact in both modes, so the enumeration order
/// is identical whether indexes are enabled or not.
pub fn for_each_homomorphism<V: InstanceView + ?Sized>(
    atoms: &[Atom],
    instance: &V,
    initial: &Assignment,
    callback: &mut dyn FnMut(&Assignment) -> bool,
) {
    let mut assignment = initial.clone();
    // When every mentioned relation is below the index cutoff, per-node
    // selectivity estimates all degenerate to the (static) relation counts,
    // so the dynamic argmin provably reproduces the stable ascending-count
    // order — take it directly and skip the per-node machinery.  The guard
    // evaluations of the bounded searches live entirely on this path.  The
    // predicate depends only on relation sizes, never on whether indexes are
    // enabled, so indexed and scan evaluation still branch identically.
    let mut order: Vec<(usize, &Atom)> = atoms
        .iter()
        .map(|a| (instance.count_of(a.predicate), a))
        .collect();
    if order.iter().all(|&(c, _)| c < crate::index::INDEX_CUTOFF) {
        order.sort_by_key(|&(c, _)| c);
        search_static(&order, 0, instance, &mut assignment, callback);
        return;
    }
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    search(&mut remaining, instance, &mut assignment, callback);
}

/// The small-instance fast path: fixed ascending-count atom order, plain
/// relation scans, per-tuple arity checks.
fn search_static<V: InstanceView + ?Sized>(
    atoms: &[(usize, &Atom)],
    at: usize,
    instance: &V,
    assignment: &mut Assignment,
    callback: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    let Some((_, atom)) = atoms.get(at) else {
        return callback(assignment);
    };
    'tuples: for tuple in instance.tuples_of(atom.predicate) {
        if tuple.arity() != atom.arity() {
            continue;
        }
        let mut newly_bound: Vec<VarId> = Vec::new();
        for (term, value) in atom.terms.iter().zip(tuple.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        undo(assignment, &newly_bound);
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match assignment.get(*v) {
                    Some(bound) => {
                        if bound != value {
                            undo(assignment, &newly_bound);
                            continue 'tuples;
                        }
                    }
                    None => {
                        assignment.insert(*v, *value);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        if search_static(atoms, at + 1, instance, assignment, callback) {
            return true;
        }
        undo(assignment, &newly_bound);
    }
    false
}

/// Collects the bound `(position, value)` pairs of `atom` under `assignment`
/// into `bound`, and returns the candidate-count estimate used for atom
/// selection: the relation size when nothing is bound (or the relation is
/// small enough that a scan wins anyway), the minimum bound-position
/// selectivity otherwise.
fn atom_estimate<V: InstanceView + ?Sized>(
    atom: &Atom,
    instance: &V,
    assignment: &Assignment,
    bound: &mut Vec<(usize, Value)>,
) -> usize {
    bound.clear();
    for (position, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(c) => bound.push((position, *c)),
            Term::Var(v) => {
                if let Some(value) = assignment.get(*v) {
                    bound.push((position, *value));
                }
            }
        }
    }
    let count = instance.count_of(atom.predicate);
    if bound.is_empty() || count < crate::index::INDEX_CUTOFF {
        return count;
    }
    bound
        .iter()
        .map(|(position, value)| instance.selectivity(atom.predicate, *position, value))
        .min()
        .unwrap_or(count)
}

fn search<V: InstanceView + ?Sized>(
    remaining: &mut Vec<&Atom>,
    instance: &V,
    assignment: &mut Assignment,
    callback: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    if remaining.is_empty() {
        return callback(assignment);
    }
    // Pick the most constrained remaining atom (ties keep the earliest, so
    // on small instances the order degenerates to the former static
    // ascending-count sort).
    let mut scratch: Vec<(usize, Value)> = Vec::new();
    let mut best_bound: Vec<(usize, Value)> = Vec::new();
    let mut best = 0usize;
    let mut best_estimate = usize::MAX;
    for (i, atom) in remaining.iter().enumerate() {
        let estimate = atom_estimate(atom, instance, assignment, &mut scratch);
        if estimate < best_estimate {
            best = i;
            best_estimate = estimate;
            std::mem::swap(&mut best_bound, &mut scratch);
        }
    }
    // `remove` (not `swap_remove`) keeps the original relative order of the
    // rest, so tie-breaking stays stable down the tree.
    let atom = remaining.remove(best);
    let known_arity = instance.known_uniform_arity(atom.predicate);
    let stopped = if known_arity.is_some_and(|a| a != atom.arity()) {
        // Arity check hoisted to the relation level: nothing can match.
        false
    } else {
        let check_arity = known_arity != Some(atom.arity());
        let candidates = if best_bound.is_empty() {
            crate::index::MatchIter::all(instance.tuples_of(atom.predicate))
        } else {
            instance.tuples_matching_all(atom.predicate, &best_bound)
        };
        extend_with_candidates(
            atom,
            candidates,
            check_arity,
            remaining,
            instance,
            assignment,
            callback,
        )
    };
    remaining.insert(best, atom);
    stopped
}

/// Tries every candidate tuple for `atom`, binding its variables and
/// recursing; returns `true` if the callback stopped the enumeration.
fn extend_with_candidates<V: InstanceView + ?Sized>(
    atom: &Atom,
    candidates: crate::index::MatchIter<'_>,
    check_arity: bool,
    remaining: &mut Vec<&Atom>,
    instance: &V,
    assignment: &mut Assignment,
    callback: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    'tuples: for tuple in candidates {
        if check_arity && tuple.arity() != atom.arity() {
            continue;
        }
        let mut newly_bound: Vec<VarId> = Vec::new();
        for (term, value) in atom.terms.iter().zip(tuple.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        undo(assignment, &newly_bound);
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match assignment.get(*v) {
                    Some(bound) => {
                        if bound != value {
                            undo(assignment, &newly_bound);
                            continue 'tuples;
                        }
                    }
                    None => {
                        assignment.insert(*v, *value);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        if search(remaining, instance, assignment, callback) {
            return true;
        }
        undo(assignment, &newly_bound);
    }
    false
}

fn undo(assignment: &mut Assignment, newly_bound: &[VarId]) {
    for v in newly_bound {
        assignment.remove(*v);
    }
}

/// True if there is a homomorphism from `atoms` into `instance` extending
/// `initial`.
#[must_use]
pub fn exists_homomorphism<V: InstanceView + ?Sized>(
    atoms: &[Atom],
    instance: &V,
    initial: &Assignment,
) -> bool {
    let mut found = false;
    for_each_homomorphism(atoms, instance, initial, &mut |_| {
        found = true;
        true
    });
    found
}

/// Macro building a [`ConjunctiveQuery`]: `cq!([x, y] <- atom1, atom2)` for a
/// query with head variables, or `cq!(<- atom1, atom2)` for a boolean query.
///
/// ```
/// use accltl_relational::{atom, cq, VarId};
/// let q = cq!([n] <- atom!("Address"; s, p, n, h));
/// assert_eq!(q.head, vec![VarId::new("n")]);
/// let b = cq!(<- atom!("Mobile#"; n, p, s, ph));
/// assert!(b.is_boolean());
/// ```
#[macro_export]
macro_rules! cq {
    ([$($h:ident),* $(,)?] <- $($a:expr),+ $(,)?) => {
        $crate::ConjunctiveQuery::with_head(vec![$(stringify!($h)),*], vec![$($a),+])
    };
    (<- $($a:expr),+ $(,)?) => {
        $crate::ConjunctiveQuery::boolean(vec![$($a),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    fn directory_instance() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        inst
    }

    #[test]
    fn boolean_query_evaluation() {
        let inst = directory_instance();
        let q = cq!(<- atom!("Address"; s, p, @"Jones", h));
        assert!(q.holds(&inst));
        let q_missing = cq!(<- atom!("Address"; s, p, @"Nobody", h));
        assert!(!q_missing.holds(&inst));
    }

    #[test]
    fn query_with_head_projects_answers() {
        let inst = directory_instance();
        let q = cq!([n] <- atom!("Address"; s, p, n, h));
        let answers = q.evaluate(&inst);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&tuple!["Smith"]));
        assert!(answers.contains(&tuple!["Jones"]));
    }

    #[test]
    fn join_across_relations() {
        let inst = directory_instance();
        // Names that have both a mobile entry and an address entry.
        let q = cq!([n] <-
            atom!("Mobile#"; n, p, s, ph),
            atom!("Address"; s2, p2, n, h));
        let answers = q.evaluate(&inst);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&tuple!["Smith"]));
    }

    #[test]
    fn join_variable_forces_agreement() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("S", tuple!["c", "d"]);
        let q = cq!(<- atom!("R"; x, y), atom!("S"; y, z));
        assert!(!q.holds(&inst));
        inst.add_fact("S", tuple!["b", "d"]);
        assert!(q.holds(&inst));
    }

    #[test]
    fn validation_detects_unsafe_head() {
        let ok = cq!([x] <- atom!("R"; x, y));
        assert!(ok.validate().is_ok());
        let bad = ConjunctiveQuery::with_head(vec!["z"], vec![atom!("R"; x, y)]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn canonical_instance_freezes_variables_and_keeps_constants() {
        let q = cq!(<- atom!("R"; x, @"c"), atom!("S"; x, y));
        let (canon, freeze) = q.canonical_instance();
        assert_eq!(canon.fact_count(), 2);
        assert_eq!(freeze.len(), 2);
        // The query itself maps homomorphically into its canonical database.
        assert!(q.holds(&canon));
        // The constant survives freezing.
        assert!(canon
            .tuples("R")
            .any(|t| t.get(1) == Some(&Value::str("c"))));
    }

    #[test]
    fn find_homomorphism_respects_initial_assignment() {
        let inst = directory_instance();
        let q = cq!([n] <- atom!("Address"; s, p, n, h));
        let mut fixed = Assignment::new();
        fixed.insert("n", Value::str("Jones"));
        let hom = q.find_homomorphism(&inst, &fixed).unwrap();
        assert_eq!(hom["n"], Value::str("Jones"));
        assert_eq!(hom["h"], Value::Int(16));

        fixed.insert("n", Value::str("Nobody"));
        assert!(q.find_homomorphism(&inst, &fixed).is_none());
    }

    #[test]
    fn rename_predicates_builds_pre_variant() {
        let q = cq!(<- atom!("Address"; s, p, n, h));
        let pre = q.rename_predicates(|r| format!("{r}_pre"));
        assert_eq!(pre.atoms[0].predicate, "Address_pre");
    }

    #[test]
    fn evaluation_on_empty_instance_is_empty() {
        let q = cq!([x] <- atom!("R"; x));
        assert!(q.evaluate(&Instance::new()).is_empty());
        assert!(!q.holds(&Instance::new()));
    }

    #[test]
    fn duplicate_variable_in_atom_requires_equal_columns() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        let q = cq!(<- atom!("R"; x, x));
        assert!(!q.holds(&inst));
        inst.add_fact("R", tuple!["c", "c"]);
        assert!(q.holds(&inst));
    }

    #[test]
    fn display_is_rule_like() {
        let q = cq!([x] <- atom!("R"; x, y));
        assert_eq!(q.to_string(), "Q(x) :- R(x, y)");
    }
}
