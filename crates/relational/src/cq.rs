//! Conjunctive queries: evaluation, homomorphisms, canonical databases.
//!
//! Conjunctive queries (CQs) are the paper's basic query class: query
//! containment under access patterns (Example 2.2), long-term relevance
//! (Example 2.3) and the canonical-database arguments behind the Boundedness
//! Lemma (Lemma 4.13) all manipulate CQs through homomorphisms.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::Atom;
use crate::error::RelationalError;
use crate::instance::Instance;
use crate::term::Term;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A variable assignment: variable name → value.
pub type Assignment = BTreeMap<String, Value>;

/// A conjunctive query.
///
/// The `head` lists the distinguished (free) variables; a query with an empty
/// head is a boolean query.  All other variables are implicitly existentially
/// quantified.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConjunctiveQuery {
    /// The distinguished variables (free variables of the query).
    pub head: Vec<String>,
    /// The body atoms, implicitly conjoined.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a boolean conjunctive query.
    #[must_use]
    pub fn boolean(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            head: Vec::new(),
            atoms,
        }
    }

    /// Creates a conjunctive query with distinguished variables.
    #[must_use]
    pub fn with_head(head: Vec<impl Into<String>>, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            head: head.into_iter().map(Into::into).collect(),
            atoms,
        }
    }

    /// True if the query has no distinguished variables.
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// The set of all variables occurring in the body.
    #[must_use]
    pub fn body_variables(&self) -> BTreeSet<String> {
        self.atoms.iter().flat_map(|a| a.variables()).collect()
    }

    /// The set of constants occurring in the body.
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        self.atoms.iter().flat_map(|a| a.constants()).collect()
    }

    /// The relation names mentioned by the query.
    #[must_use]
    pub fn relations(&self) -> BTreeSet<String> {
        self.atoms.iter().map(|a| a.predicate.clone()).collect()
    }

    /// Checks the query is safe: every head variable occurs in the body.
    ///
    /// # Errors
    /// Returns [`RelationalError::MalformedQuery`] naming the offending
    /// variable.
    pub fn validate(&self) -> Result<()> {
        let body_vars = self.body_variables();
        for v in &self.head {
            if !body_vars.contains(v) {
                return Err(RelationalError::MalformedQuery(format!(
                    "head variable `{v}` does not occur in the body"
                )));
            }
        }
        Ok(())
    }

    /// The total number of atoms (a standard size measure).
    #[must_use]
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// Renames every variable of the query (head and body) with `f`.
    #[must_use]
    pub fn rename_vars(&self, f: &dyn Fn(&str) -> String) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self.head.iter().map(|v| f(v)).collect(),
            atoms: self.atoms.iter().map(|a| a.rename_vars(f)).collect(),
        }
    }

    /// Renames every predicate of the query with `f` (used to build the
    /// `Q^pre`/`Q^post` variants of Section 2).
    #[must_use]
    pub fn rename_predicates(&self, f: &dyn Fn(&str) -> String) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self.head.clone(),
            atoms: self
                .atoms
                .iter()
                .map(|a| a.with_predicate(f(&a.predicate)))
                .collect(),
        }
    }

    /// Evaluates the query on an instance, returning the set of head-variable
    /// bindings projected as tuples.  A boolean query returns either the empty
    /// set or the singleton set containing the empty tuple.
    #[must_use]
    pub fn evaluate(&self, instance: &Instance) -> BTreeSet<Tuple> {
        let mut results = BTreeSet::new();
        for_each_homomorphism(
            &self.atoms,
            instance,
            &Assignment::new(),
            &mut |assignment| {
                let tuple: Tuple = self
                    .head
                    .iter()
                    .map(|v| {
                        assignment
                            .get(v)
                            .cloned()
                            .expect("validated query: head variables are bound by the body")
                    })
                    .collect();
                results.insert(tuple);
                // Keep enumerating: we want all answers.
                false
            },
        );
        results
    }

    /// True if the (boolean) query holds on the instance.  For a non-boolean
    /// query this means "has at least one answer".
    #[must_use]
    pub fn holds(&self, instance: &Instance) -> bool {
        exists_homomorphism(&self.atoms, instance, &Assignment::new())
    }

    /// Finds one homomorphism from the query body into the instance extending
    /// the given partial assignment, if any.
    #[must_use]
    pub fn find_homomorphism(
        &self,
        instance: &Instance,
        initial: &Assignment,
    ) -> Option<Assignment> {
        let mut found = None;
        for_each_homomorphism(&self.atoms, instance, initial, &mut |assignment| {
            found = Some(assignment.clone());
            true
        });
        found
    }

    /// The canonical database (frozen body) of the query together with the
    /// freezing assignment variable → frozen constant.
    ///
    /// Constants in the query are kept as themselves; every variable `x` is
    /// frozen to a distinct labelled value that cannot collide with ordinary
    /// values.
    #[must_use]
    pub fn canonical_instance(&self) -> (Instance, Assignment) {
        let mut freeze = Assignment::new();
        for (i, var) in self.body_variables().iter().enumerate() {
            freeze.insert(var.clone(), frozen_value(var, i));
        }
        let mut instance = Instance::new();
        for atom in &self.atoms {
            let tuple: Tuple = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => freeze[v].clone(),
                    Term::Const(c) => c.clone(),
                })
                .collect();
            instance.add_fact(atom.predicate.clone(), tuple);
        }
        (instance, freeze)
    }
}

/// The frozen constant representing variable `var` in a canonical database.
#[must_use]
pub fn frozen_value(var: &str, index: usize) -> Value {
    Value::Str(format!("\u{2744}{index}_{var}"))
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Enumerates homomorphisms from `atoms` into `instance` extending `initial`.
///
/// The callback is invoked once per homomorphism; returning `true` stops the
/// enumeration early (used by existence checks).
pub fn for_each_homomorphism(
    atoms: &[Atom],
    instance: &Instance,
    initial: &Assignment,
    callback: &mut dyn FnMut(&Assignment) -> bool,
) {
    let mut assignment = initial.clone();
    // Order atoms so that the most constrained (fewest candidate tuples) come
    // first; a cheap heuristic that materially helps on larger instances.
    let mut order: Vec<&Atom> = atoms.iter().collect();
    order.sort_by_key(|a| instance.relation_size(&a.predicate));
    search(&order, 0, instance, &mut assignment, callback);
}

fn search(
    atoms: &[&Atom],
    index: usize,
    instance: &Instance,
    assignment: &mut Assignment,
    callback: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    if index == atoms.len() {
        return callback(assignment);
    }
    let atom = atoms[index];
    let candidates: Vec<&Tuple> = instance.tuples(&atom.predicate).collect();
    'tuples: for tuple in candidates {
        if tuple.arity() != atom.arity() {
            continue;
        }
        let mut newly_bound: Vec<String> = Vec::new();
        for (term, value) in atom.terms.iter().zip(tuple.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        undo(assignment, &newly_bound);
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(bound) => {
                        if bound != value {
                            undo(assignment, &newly_bound);
                            continue 'tuples;
                        }
                    }
                    None => {
                        assignment.insert(v.clone(), value.clone());
                        newly_bound.push(v.clone());
                    }
                },
            }
        }
        if search(atoms, index + 1, instance, assignment, callback) {
            return true;
        }
        undo(assignment, &newly_bound);
    }
    false
}

fn undo(assignment: &mut Assignment, newly_bound: &[String]) {
    for v in newly_bound {
        assignment.remove(v);
    }
}

/// True if there is a homomorphism from `atoms` into `instance` extending
/// `initial`.
#[must_use]
pub fn exists_homomorphism(atoms: &[Atom], instance: &Instance, initial: &Assignment) -> bool {
    let mut found = false;
    for_each_homomorphism(atoms, instance, initial, &mut |_| {
        found = true;
        true
    });
    found
}

/// Macro building a [`ConjunctiveQuery`]: `cq!([x, y] <- atom1, atom2)` for a
/// query with head variables, or `cq!(<- atom1, atom2)` for a boolean query.
///
/// ```
/// use accltl_relational::{atom, cq};
/// let q = cq!([n] <- atom!("Address"; s, p, n, h));
/// assert_eq!(q.head, vec!["n".to_string()]);
/// let b = cq!(<- atom!("Mobile#"; n, p, s, ph));
/// assert!(b.is_boolean());
/// ```
#[macro_export]
macro_rules! cq {
    ([$($h:ident),* $(,)?] <- $($a:expr),+ $(,)?) => {
        $crate::ConjunctiveQuery::with_head(vec![$(stringify!($h)),*], vec![$($a),+])
    };
    (<- $($a:expr),+ $(,)?) => {
        $crate::ConjunctiveQuery::boolean(vec![$($a),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    fn directory_instance() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        inst
    }

    #[test]
    fn boolean_query_evaluation() {
        let inst = directory_instance();
        let q = cq!(<- atom!("Address"; s, p, @"Jones", h));
        assert!(q.holds(&inst));
        let q_missing = cq!(<- atom!("Address"; s, p, @"Nobody", h));
        assert!(!q_missing.holds(&inst));
    }

    #[test]
    fn query_with_head_projects_answers() {
        let inst = directory_instance();
        let q = cq!([n] <- atom!("Address"; s, p, n, h));
        let answers = q.evaluate(&inst);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&tuple!["Smith"]));
        assert!(answers.contains(&tuple!["Jones"]));
    }

    #[test]
    fn join_across_relations() {
        let inst = directory_instance();
        // Names that have both a mobile entry and an address entry.
        let q = cq!([n] <-
            atom!("Mobile#"; n, p, s, ph),
            atom!("Address"; s2, p2, n, h));
        let answers = q.evaluate(&inst);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&tuple!["Smith"]));
    }

    #[test]
    fn join_variable_forces_agreement() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("S", tuple!["c", "d"]);
        let q = cq!(<- atom!("R"; x, y), atom!("S"; y, z));
        assert!(!q.holds(&inst));
        inst.add_fact("S", tuple!["b", "d"]);
        assert!(q.holds(&inst));
    }

    #[test]
    fn validation_detects_unsafe_head() {
        let ok = cq!([x] <- atom!("R"; x, y));
        assert!(ok.validate().is_ok());
        let bad = ConjunctiveQuery::with_head(vec!["z"], vec![atom!("R"; x, y)]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn canonical_instance_freezes_variables_and_keeps_constants() {
        let q = cq!(<- atom!("R"; x, @"c"), atom!("S"; x, y));
        let (canon, freeze) = q.canonical_instance();
        assert_eq!(canon.fact_count(), 2);
        assert_eq!(freeze.len(), 2);
        // The query itself maps homomorphically into its canonical database.
        assert!(q.holds(&canon));
        // The constant survives freezing.
        assert!(canon
            .tuples("R")
            .any(|t| t.get(1) == Some(&Value::str("c"))));
    }

    #[test]
    fn find_homomorphism_respects_initial_assignment() {
        let inst = directory_instance();
        let q = cq!([n] <- atom!("Address"; s, p, n, h));
        let mut fixed = Assignment::new();
        fixed.insert("n".to_owned(), Value::str("Jones"));
        let hom = q.find_homomorphism(&inst, &fixed).unwrap();
        assert_eq!(hom["n"], Value::str("Jones"));
        assert_eq!(hom["h"], Value::Int(16));

        fixed.insert("n".to_owned(), Value::str("Nobody"));
        assert!(q.find_homomorphism(&inst, &fixed).is_none());
    }

    #[test]
    fn rename_predicates_builds_pre_variant() {
        let q = cq!(<- atom!("Address"; s, p, n, h));
        let pre = q.rename_predicates(&|r| format!("{r}_pre"));
        assert_eq!(pre.atoms[0].predicate, "Address_pre");
    }

    #[test]
    fn evaluation_on_empty_instance_is_empty() {
        let q = cq!([x] <- atom!("R"; x));
        assert!(q.evaluate(&Instance::new()).is_empty());
        assert!(!q.holds(&Instance::new()));
    }

    #[test]
    fn duplicate_variable_in_atom_requires_equal_columns() {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        let q = cq!(<- atom!("R"; x, x));
        assert!(!q.holds(&inst));
        inst.add_fact("R", tuple!["c", "c"]);
        assert!(q.holds(&inst));
    }

    #[test]
    fn display_is_rule_like() {
        let q = cq!([x] <- atom!("R"; x, y));
        assert_eq!(q.to_string(), "Q(x) :- R(x, y)");
    }
}
