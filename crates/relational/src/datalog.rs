//! A Datalog engine with semi-naive evaluation.
//!
//! The paper's decision procedure for A-automaton emptiness (Section 4.1)
//! constructs a Datalog program whose fixpoint simulates the automaton's
//! accesses; and the classical result of Li \[15\] computes the maximal answers
//! of a query under access patterns with a Datalog program that "tries all
//! valid accesses".  Both use the engine in this module.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::Atom;
use crate::cq::{for_each_homomorphism, Assignment};
use crate::error::RelationalError;
use crate::instance::Instance;
use crate::symbols::RelId;
use crate::term::Term;
use crate::tuple::Tuple;
use crate::Result;

/// A Datalog rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatalogRule {
    /// The head atom (over an intensional predicate).
    pub head: Atom,
    /// The body atoms (over intensional or extensional predicates).
    pub body: Vec<Atom>,
}

impl DatalogRule {
    /// Creates a rule.
    #[must_use]
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        DatalogRule { head, body }
    }

    /// Checks the rule is safe: every head variable occurs in the body.
    pub fn validate(&self) -> Result<()> {
        let body_vars: BTreeSet<_> = self.body.iter().flat_map(|a| a.variables()).collect();
        for v in self.head.variables() {
            if !body_vars.contains(&v) {
                return Err(RelationalError::UnsafeRule(format!(
                    "head variable `{v}` of rule `{self}` does not occur in the body"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for DatalogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A Datalog program with a distinguished goal predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogProgram {
    rules: Vec<DatalogRule>,
    goal: RelId,
}

impl DatalogProgram {
    /// Creates a program, validating every rule.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnsafeRule`] if a rule is unsafe.
    pub fn new(rules: Vec<DatalogRule>, goal: impl Into<RelId>) -> Result<Self> {
        for rule in &rules {
            rule.validate()?;
        }
        Ok(DatalogProgram {
            rules,
            goal: goal.into(),
        })
    }

    /// The rules of the program.
    #[must_use]
    pub fn rules(&self) -> &[DatalogRule] {
        &self.rules
    }

    /// The goal predicate.
    #[must_use]
    pub fn goal(&self) -> RelId {
        self.goal
    }

    /// The intensional predicates (those occurring in some rule head).
    #[must_use]
    pub fn intensional_predicates(&self) -> BTreeSet<RelId> {
        self.rules.iter().map(|r| r.head.predicate).collect()
    }

    /// The extensional predicates (body predicates that never occur in a
    /// head).
    #[must_use]
    pub fn extensional_predicates(&self) -> BTreeSet<RelId> {
        let idb = self.intensional_predicates();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().map(|a| a.predicate))
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// True if the program is recursive (some intensional predicate depends on
    /// itself through the rule bodies).
    #[must_use]
    pub fn is_recursive(&self) -> bool {
        let idb = self.intensional_predicates();
        // Build the dependency graph among intensional predicates.
        let mut edges: BTreeMap<RelId, BTreeSet<RelId>> = BTreeMap::new();
        for rule in &self.rules {
            let from = rule.head.predicate;
            for atom in &rule.body {
                if idb.contains(&atom.predicate) {
                    edges.entry(from).or_default().insert(atom.predicate);
                }
            }
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            InProgress,
            Done,
        }
        fn dfs(
            node: RelId,
            edges: &BTreeMap<RelId, BTreeSet<RelId>>,
            marks: &mut BTreeMap<RelId, Mark>,
        ) -> bool {
            match marks.get(&node) {
                Some(Mark::InProgress) => return true,
                Some(Mark::Done) => return false,
                None => {}
            }
            marks.insert(node, Mark::InProgress);
            if let Some(next) = edges.get(&node) {
                for n in next {
                    if dfs(*n, edges, marks) {
                        return true;
                    }
                }
            }
            marks.insert(node, Mark::Done);
            false
        }
        let mut marks = BTreeMap::new();
        edges.keys().any(|node| dfs(*node, &edges, &mut marks))
    }

    /// Number of rules (a size measure).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Computes the least fixpoint of the program over the given extensional
    /// database using semi-naive evaluation.  The result contains both the
    /// extensional facts and all derived intensional facts.
    ///
    /// Evaluation is an index-to-index hash join: each semi-naive round
    /// seeds one body atom from the previous round's delta instance and
    /// joins the remaining atoms against the accumulating total through the
    /// per-position value indexes (see [`crate::index`]), which the total
    /// maintains incrementally across rounds.  No combined Δ-view instance
    /// is ever materialized.
    #[must_use]
    pub fn fixpoint(&self, edb: &Instance) -> Instance {
        self.saturate(edb, false).0
    }

    /// True if the goal predicate is non-empty in the fixpoint over `edb`.
    /// Short-circuits: the fixpoint stops as soon as a goal fact is derived
    /// (or is already present in `edb`), without saturating the rest.
    #[must_use]
    pub fn accepts(&self, edb: &Instance) -> bool {
        self.saturate(edb, true).1
    }

    /// Runs semi-naive evaluation.  With `stop_at_goal`, returns as soon as
    /// a goal fact is seen; the returned instance is then only partially
    /// saturated.  The second component reports whether the goal relation is
    /// non-empty.
    fn saturate(&self, edb: &Instance, stop_at_goal: bool) -> (Instance, bool) {
        let mut total = edb.clone();
        if stop_at_goal && total.relation_size(self.goal) > 0 {
            return (total, true);
        }
        // Per rule, the Δ-seeded variants: body atom `i` is matched against
        // the delta, the remaining atoms join against the full total.
        let variants: Vec<Vec<(&Atom, Vec<Atom>)>> = self
            .rules
            .iter()
            .map(|rule| {
                (0..rule.body.len())
                    .map(|i| {
                        let rest: Vec<Atom> = rule
                            .body
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, atom)| atom.clone())
                            .collect();
                        (&rule.body[i], rest)
                    })
                    .collect()
            })
            .collect();

        // Initial round: naive application of every rule on the EDB.
        let mut delta = Instance::new();
        for rule in &self.rules {
            let stopped = derive(rule, &rule.body, &total, &Assignment::new(), &mut {
                let total = &total;
                let delta = &mut delta;
                move |rel, tuple| {
                    let is_goal = stop_at_goal && rel == self.goal;
                    if !total.contains(rel, &tuple) {
                        delta.add_fact(rel, tuple);
                    }
                    is_goal
                }
            });
            if stopped {
                merge(&mut total, &delta);
                return (total, true);
            }
        }
        merge(&mut total, &delta);

        // Semi-naive rounds: each new derivation must use at least one fact
        // from the previous round's delta (`total` already contains it).
        while !delta.is_empty() {
            let mut next = Instance::new();
            for (rule, seeded) in self.rules.iter().zip(&variants) {
                for (seed, rest) in seeded {
                    if delta.relation_size(seed.predicate) == 0 {
                        continue;
                    }
                    let mut stopped = false;
                    // Seed the Δ-atom from the delta's index, then join the
                    // rest of the body against the total's index.
                    for_each_homomorphism(
                        std::slice::from_ref(seed),
                        &delta,
                        &Assignment::new(),
                        &mut |seed_assignment| {
                            stopped = derive(rule, rest, &total, seed_assignment, &mut {
                                let total = &total;
                                let next = &mut next;
                                move |rel, tuple| {
                                    let is_goal = stop_at_goal && rel == self.goal;
                                    if !total.contains(rel, &tuple) {
                                        next.add_fact(rel, tuple);
                                    }
                                    is_goal
                                }
                            });
                            stopped
                        },
                    );
                    if stopped {
                        merge(&mut total, &next);
                        return (total, true);
                    }
                }
            }
            merge(&mut total, &next);
            delta = next;
        }
        let accepted = total.relation_size(self.goal) > 0;
        (total, accepted)
    }
}

/// Adds every fact of `delta` to `total` (via [`Instance::add_fact`], so the
/// total's incremental index stays live).
fn merge(total: &mut Instance, delta: &Instance) {
    for (rel, tuple) in delta.facts() {
        total.add_fact(rel, tuple.clone());
    }
}

/// Enumerates homomorphisms of `body` into `instance` extending `initial`
/// and feeds every instantiated head to `sink`; stops (returning `true`) as
/// soon as the sink asks to.
fn derive(
    rule: &DatalogRule,
    body: &[Atom],
    instance: &Instance,
    initial: &Assignment,
    sink: &mut dyn FnMut(RelId, Tuple) -> bool,
) -> bool {
    let mut stopped = false;
    for_each_homomorphism(body, instance, initial, &mut |assignment| {
        let tuple: Tuple = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => assignment
                    .get(*v)
                    .copied()
                    .expect("safe rule: head variables bound by body"),
            })
            .collect();
        stopped = sink(rule.head.predicate, tuple);
        stopped
    });
    stopped
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "goal: {}", self.goal)?;
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    /// Transitive closure: the canonical recursive Datalog example.
    fn transitive_closure() -> DatalogProgram {
        DatalogProgram::new(
            vec![
                DatalogRule::new(atom!("T"; x, y), vec![atom!("E"; x, y)]),
                DatalogRule::new(atom!("T"; x, z), vec![atom!("E"; x, y), atom!("T"; y, z)]),
                DatalogRule::new(atom!("Goal"), vec![atom!("T"; @"a", @"d")]),
            ],
            "Goal",
        )
        .unwrap()
    }

    fn chain_edb() -> Instance {
        let mut edb = Instance::new();
        edb.add_fact("E", tuple!["a", "b"]);
        edb.add_fact("E", tuple!["b", "c"]);
        edb.add_fact("E", tuple!["c", "d"]);
        edb
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let program = transitive_closure();
        let fixpoint = program.fixpoint(&chain_edb());
        assert_eq!(fixpoint.relation_size("T"), 6);
        assert!(fixpoint.contains("T", &tuple!["a", "d"]));
        assert!(program.accepts(&chain_edb()));
    }

    #[test]
    fn goal_is_not_derived_without_a_path() {
        let program = transitive_closure();
        let mut edb = Instance::new();
        edb.add_fact("E", tuple!["a", "b"]);
        edb.add_fact("E", tuple!["c", "d"]);
        assert!(!program.accepts(&edb));
    }

    #[test]
    fn semi_naive_agrees_with_naive_on_random_style_input() {
        // A second program: same-generation.
        let program = DatalogProgram::new(
            vec![
                DatalogRule::new(atom!("SG"; x, x), vec![atom!("Person"; x)]),
                DatalogRule::new(
                    atom!("SG"; x, y),
                    vec![
                        atom!("Par"; x, xp),
                        atom!("SG"; xp, yp),
                        atom!("Par"; y, yp),
                    ],
                ),
                DatalogRule::new(atom!("Goal"), vec![atom!("SG"; @"ann", @"bob")]),
            ],
            "Goal",
        )
        .unwrap();
        let mut edb = Instance::new();
        for p in ["ann", "bob", "carl", "dora"] {
            edb.add_fact("Person", tuple![p]);
        }
        edb.add_fact("Par", tuple!["ann", "carl"]);
        edb.add_fact("Par", tuple!["bob", "dora"]);
        edb.add_fact("Par", tuple!["carl", "dora"]);
        // ann and bob are not same generation (ann is one below bob's parents'
        // generation? carl's parent is dora, bob's parent is dora, so carl and
        // bob are same generation; ann's parent carl, so ann is one below).
        let fix = program.fixpoint(&edb);
        assert!(fix.contains("SG", &tuple!["carl", "bob"]));
        assert!(!fix.contains("SG", &tuple!["ann", "bob"]));
        assert!(!program.accepts(&edb));
    }

    #[test]
    fn predicate_classification() {
        let program = transitive_closure();
        assert_eq!(
            program.intensional_predicates(),
            BTreeSet::from([RelId::new("T"), RelId::new("Goal")])
        );
        assert_eq!(
            program.extensional_predicates(),
            BTreeSet::from([RelId::new("E")])
        );
        assert!(program.is_recursive());

        let nonrec = DatalogProgram::new(
            vec![DatalogRule::new(atom!("Goal"), vec![atom!("E"; x, y)])],
            "Goal",
        )
        .unwrap();
        assert!(!nonrec.is_recursive());
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        let result = DatalogProgram::new(
            vec![DatalogRule::new(atom!("P"; x, z), vec![atom!("E"; x, y)])],
            "P",
        );
        assert!(matches!(result, Err(RelationalError::UnsafeRule(_))));
    }

    #[test]
    fn rules_with_constants_in_heads() {
        let program = DatalogProgram::new(
            vec![DatalogRule::new(
                atom!("Tagged"; @"seen", x),
                vec![atom!("E"; x, y)],
            )],
            "Tagged",
        )
        .unwrap();
        let fix = program.fixpoint(&chain_edb());
        assert!(fix.contains("Tagged", &tuple!["seen", "a"]));
        assert_eq!(fix.relation_size("Tagged"), 3);
    }

    #[test]
    fn empty_program_fixpoint_is_edb() {
        let program = DatalogProgram::new(vec![], "Goal").unwrap();
        assert!(program.is_empty());
        let edb = chain_edb();
        assert_eq!(program.fixpoint(&edb), edb);
        assert!(!program.accepts(&edb));
    }

    #[test]
    fn display_prints_rules() {
        let program = transitive_closure();
        let text = program.to_string();
        assert!(text.contains("T(x, y) :- E(x, y)"));
        assert!(text.contains("goal: Goal"));
    }
}
