//! A Datalog engine with semi-naive evaluation.
//!
//! The paper's decision procedure for A-automaton emptiness (Section 4.1)
//! constructs a Datalog program whose fixpoint simulates the automaton's
//! accesses; and the classical result of Li \[15\] computes the maximal answers
//! of a query under access patterns with a Datalog program that "tries all
//! valid accesses".  Both use the engine in this module.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::Atom;
use crate::cq::{for_each_homomorphism, Assignment};
use crate::error::RelationalError;
use crate::instance::Instance;
use crate::symbols::{IdMap, RelId};
use crate::term::Term;
use crate::tuple::Tuple;
use crate::Result;

/// A Datalog rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatalogRule {
    /// The head atom (over an intensional predicate).
    pub head: Atom,
    /// The body atoms (over intensional or extensional predicates).
    pub body: Vec<Atom>,
}

impl DatalogRule {
    /// Creates a rule.
    #[must_use]
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        DatalogRule { head, body }
    }

    /// Checks the rule is safe: every head variable occurs in the body.
    pub fn validate(&self) -> Result<()> {
        let body_vars: BTreeSet<_> = self.body.iter().flat_map(|a| a.variables()).collect();
        for v in self.head.variables() {
            if !body_vars.contains(&v) {
                return Err(RelationalError::UnsafeRule(format!(
                    "head variable `{v}` of rule `{self}` does not occur in the body"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for DatalogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A Datalog program with a distinguished goal predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogProgram {
    rules: Vec<DatalogRule>,
    goal: RelId,
}

impl DatalogProgram {
    /// Creates a program, validating every rule.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnsafeRule`] if a rule is unsafe.
    pub fn new(rules: Vec<DatalogRule>, goal: impl Into<RelId>) -> Result<Self> {
        for rule in &rules {
            rule.validate()?;
        }
        Ok(DatalogProgram {
            rules,
            goal: goal.into(),
        })
    }

    /// The rules of the program.
    #[must_use]
    pub fn rules(&self) -> &[DatalogRule] {
        &self.rules
    }

    /// The goal predicate.
    #[must_use]
    pub fn goal(&self) -> RelId {
        self.goal
    }

    /// The intensional predicates (those occurring in some rule head).
    #[must_use]
    pub fn intensional_predicates(&self) -> BTreeSet<RelId> {
        self.rules.iter().map(|r| r.head.predicate).collect()
    }

    /// The extensional predicates (body predicates that never occur in a
    /// head).
    #[must_use]
    pub fn extensional_predicates(&self) -> BTreeSet<RelId> {
        let idb = self.intensional_predicates();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().map(|a| a.predicate))
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// True if the program is recursive (some intensional predicate depends on
    /// itself through the rule bodies).
    #[must_use]
    pub fn is_recursive(&self) -> bool {
        let idb = self.intensional_predicates();
        // Build the dependency graph among intensional predicates.
        let mut edges: BTreeMap<RelId, BTreeSet<RelId>> = BTreeMap::new();
        for rule in &self.rules {
            let from = rule.head.predicate;
            for atom in &rule.body {
                if idb.contains(&atom.predicate) {
                    edges.entry(from).or_default().insert(atom.predicate);
                }
            }
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            InProgress,
            Done,
        }
        fn dfs(
            node: RelId,
            edges: &BTreeMap<RelId, BTreeSet<RelId>>,
            marks: &mut BTreeMap<RelId, Mark>,
        ) -> bool {
            match marks.get(&node) {
                Some(Mark::InProgress) => return true,
                Some(Mark::Done) => return false,
                None => {}
            }
            marks.insert(node, Mark::InProgress);
            if let Some(next) = edges.get(&node) {
                for n in next {
                    if dfs(*n, edges, marks) {
                        return true;
                    }
                }
            }
            marks.insert(node, Mark::Done);
            false
        }
        let mut marks = BTreeMap::new();
        edges.keys().any(|node| dfs(*node, &edges, &mut marks))
    }

    /// Number of rules (a size measure).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Computes the least fixpoint of the program over the given extensional
    /// database using semi-naive evaluation.  The result contains both the
    /// extensional facts and all derived intensional facts.
    #[must_use]
    pub fn fixpoint(&self, edb: &Instance) -> Instance {
        let mut total = edb.clone();
        let vocab = DeltaVocab::new(&self.rules);
        // Initial round: naive application of every rule on the EDB.
        let mut delta = Instance::new();
        for rule in &self.rules {
            for fact in apply_rule(rule, &total, None, &vocab) {
                if !total.contains(fact.0, &fact.1) {
                    delta.add_fact(fact.0, fact.1);
                }
            }
        }
        for (rel, tuple) in delta.facts() {
            total.add_fact(rel, tuple.clone());
        }

        // Semi-naive rounds: each new derivation must use at least one fact
        // from the previous round's delta.
        while !delta.is_empty() {
            let mut next_delta = Instance::new();
            for rule in &self.rules {
                for fact in apply_rule(rule, &total, Some(&delta), &vocab) {
                    if !total.contains(fact.0, &fact.1) {
                        next_delta.add_fact(fact.0, fact.1);
                    }
                }
            }
            for (rel, tuple) in next_delta.facts() {
                total.add_fact(rel, tuple.clone());
            }
            delta = next_delta;
        }
        total
    }

    /// True if the goal predicate is non-empty in the fixpoint over `edb`.
    #[must_use]
    pub fn accepts(&self, edb: &Instance) -> bool {
        // Short-circuit: stop as soon as a goal fact appears.
        let fixpoint = self.fixpoint(edb);
        fixpoint.relation_size(self.goal) > 0
    }
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "goal: {}", self.goal)?;
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

/// Marker prefix for the "delta view" of a predicate used during semi-naive
/// evaluation.
const DELTA_PREFIX: &str = "\u{0394}";

/// The interned id of the Δ-view of a predicate.  Interning is memoised by the
/// process-wide pool; [`DeltaVocab`] additionally caches the mapping per
/// fixpoint run so the semi-naive inner loop never formats a string.
fn delta_rel(rel: RelId) -> RelId {
    RelId::new(&format!("{DELTA_PREFIX}{rel}"))
}

/// Per-fixpoint cache of `R → ΔR` ids, resolved once for every predicate the
/// program mentions.
struct DeltaVocab {
    map: IdMap<RelId>,
}

impl DeltaVocab {
    fn new(rules: &[DatalogRule]) -> Self {
        let mut map = IdMap::new();
        for rule in rules {
            for atom in std::iter::once(&rule.head).chain(&rule.body) {
                if map.get(atom.predicate.id()).is_none() {
                    map.insert(atom.predicate.id(), delta_rel(atom.predicate));
                }
            }
        }
        DeltaVocab { map }
    }

    fn of(&self, rel: RelId) -> RelId {
        match self.map.get(rel.id()) {
            Some(delta) => *delta,
            None => delta_rel(rel),
        }
    }
}

/// Applies a rule against `total`, optionally requiring that at least one body
/// atom is matched against `delta` (semi-naive restriction).
fn apply_rule(
    rule: &DatalogRule,
    total: &Instance,
    delta: Option<&Instance>,
    vocab: &DeltaVocab,
) -> Vec<(RelId, Tuple)> {
    let mut derived = Vec::new();
    match delta {
        None => {
            collect_heads(rule, &rule.body, total, &mut derived);
        }
        Some(delta) => {
            // Build a combined instance where delta facts are additionally
            // visible under Δ-prefixed predicate names, then for each body
            // position i rewrite that atom to use the Δ view.
            let mut combined = total.clone();
            for (rel, tuple) in delta.facts() {
                combined.add_fact(vocab.of(rel), tuple.clone());
            }
            for i in 0..rule.body.len() {
                if delta.relation_size(rule.body[i].predicate) == 0 {
                    continue;
                }
                let mut body = rule.body.clone();
                body[i] = body[i].with_predicate(vocab.of(body[i].predicate));
                collect_heads(rule, &body, &combined, &mut derived);
            }
        }
    }
    derived
}

fn collect_heads(
    rule: &DatalogRule,
    body: &[Atom],
    instance: &Instance,
    derived: &mut Vec<(RelId, Tuple)>,
) {
    for_each_homomorphism(body, instance, &Assignment::new(), &mut |assignment| {
        let tuple: Tuple = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => assignment
                    .get(*v)
                    .copied()
                    .expect("safe rule: head variables bound by body"),
            })
            .collect();
        derived.push((rule.head.predicate, tuple));
        false
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, tuple};

    /// Transitive closure: the canonical recursive Datalog example.
    fn transitive_closure() -> DatalogProgram {
        DatalogProgram::new(
            vec![
                DatalogRule::new(atom!("T"; x, y), vec![atom!("E"; x, y)]),
                DatalogRule::new(atom!("T"; x, z), vec![atom!("E"; x, y), atom!("T"; y, z)]),
                DatalogRule::new(atom!("Goal"), vec![atom!("T"; @"a", @"d")]),
            ],
            "Goal",
        )
        .unwrap()
    }

    fn chain_edb() -> Instance {
        let mut edb = Instance::new();
        edb.add_fact("E", tuple!["a", "b"]);
        edb.add_fact("E", tuple!["b", "c"]);
        edb.add_fact("E", tuple!["c", "d"]);
        edb
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let program = transitive_closure();
        let fixpoint = program.fixpoint(&chain_edb());
        assert_eq!(fixpoint.relation_size("T"), 6);
        assert!(fixpoint.contains("T", &tuple!["a", "d"]));
        assert!(program.accepts(&chain_edb()));
    }

    #[test]
    fn goal_is_not_derived_without_a_path() {
        let program = transitive_closure();
        let mut edb = Instance::new();
        edb.add_fact("E", tuple!["a", "b"]);
        edb.add_fact("E", tuple!["c", "d"]);
        assert!(!program.accepts(&edb));
    }

    #[test]
    fn semi_naive_agrees_with_naive_on_random_style_input() {
        // A second program: same-generation.
        let program = DatalogProgram::new(
            vec![
                DatalogRule::new(atom!("SG"; x, x), vec![atom!("Person"; x)]),
                DatalogRule::new(
                    atom!("SG"; x, y),
                    vec![
                        atom!("Par"; x, xp),
                        atom!("SG"; xp, yp),
                        atom!("Par"; y, yp),
                    ],
                ),
                DatalogRule::new(atom!("Goal"), vec![atom!("SG"; @"ann", @"bob")]),
            ],
            "Goal",
        )
        .unwrap();
        let mut edb = Instance::new();
        for p in ["ann", "bob", "carl", "dora"] {
            edb.add_fact("Person", tuple![p]);
        }
        edb.add_fact("Par", tuple!["ann", "carl"]);
        edb.add_fact("Par", tuple!["bob", "dora"]);
        edb.add_fact("Par", tuple!["carl", "dora"]);
        // ann and bob are not same generation (ann is one below bob's parents'
        // generation? carl's parent is dora, bob's parent is dora, so carl and
        // bob are same generation; ann's parent carl, so ann is one below).
        let fix = program.fixpoint(&edb);
        assert!(fix.contains("SG", &tuple!["carl", "bob"]));
        assert!(!fix.contains("SG", &tuple!["ann", "bob"]));
        assert!(!program.accepts(&edb));
    }

    #[test]
    fn predicate_classification() {
        let program = transitive_closure();
        assert_eq!(
            program.intensional_predicates(),
            BTreeSet::from([RelId::new("T"), RelId::new("Goal")])
        );
        assert_eq!(
            program.extensional_predicates(),
            BTreeSet::from([RelId::new("E")])
        );
        assert!(program.is_recursive());

        let nonrec = DatalogProgram::new(
            vec![DatalogRule::new(atom!("Goal"), vec![atom!("E"; x, y)])],
            "Goal",
        )
        .unwrap();
        assert!(!nonrec.is_recursive());
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        let result = DatalogProgram::new(
            vec![DatalogRule::new(atom!("P"; x, z), vec![atom!("E"; x, y)])],
            "P",
        );
        assert!(matches!(result, Err(RelationalError::UnsafeRule(_))));
    }

    #[test]
    fn rules_with_constants_in_heads() {
        let program = DatalogProgram::new(
            vec![DatalogRule::new(
                atom!("Tagged"; @"seen", x),
                vec![atom!("E"; x, y)],
            )],
            "Tagged",
        )
        .unwrap();
        let fix = program.fixpoint(&chain_edb());
        assert!(fix.contains("Tagged", &tuple!["seen", "a"]));
        assert_eq!(fix.relation_size("Tagged"), 3);
    }

    #[test]
    fn empty_program_fixpoint_is_edb() {
        let program = DatalogProgram::new(vec![], "Goal").unwrap();
        assert!(program.is_empty());
        let edb = chain_edb();
        assert_eq!(program.fixpoint(&edb), edb);
        assert!(!program.accepts(&edb));
    }

    #[test]
    fn display_prints_rules() {
        let program = transitive_closure();
        let text = program.to_string();
        assert!(text.contains("T(x, y) :- E(x, y)"));
        assert!(text.contains("goal: Goal"));
    }
}
