//! Relational atoms `R(t1, ..., tn)`.

use std::collections::BTreeSet;
use std::fmt;

use crate::symbols::{RelId, VarId};
use crate::term::Term;
use crate::value::Value;

/// A relational atom: an interned predicate name applied to a sequence of
/// terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The predicate (relation) name.
    pub predicate: RelId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    #[must_use]
    pub fn new(predicate: impl Into<RelId>, terms: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// The arity of the atom.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The set of variables occurring in the atom.
    #[must_use]
    pub fn variables(&self) -> BTreeSet<VarId> {
        self.terms.iter().filter_map(Term::as_var_id).collect()
    }

    /// The set of constants occurring in the atom.
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        self.terms
            .iter()
            .filter_map(|t| t.as_const().copied())
            .collect()
    }

    /// Renames every variable in the atom.
    #[must_use]
    pub fn rename_vars(&self, f: impl Fn(&str) -> String) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self.terms.iter().map(|t| t.rename_var(&f)).collect(),
        }
    }

    /// Replaces the predicate name, keeping the terms.
    #[must_use]
    pub fn with_predicate(&self, predicate: impl Into<RelId>) -> Atom {
        Atom {
            predicate: predicate.into(),
            terms: self.terms.clone(),
        }
    }

    /// Substitutes variables by terms according to `subst`; unmapped variables
    /// are kept.
    #[must_use]
    pub fn substitute(&self, subst: impl Fn(VarId) -> Option<Term>) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(name) => subst(*name).unwrap_or(*t),
                    Term::Const(_) => *t,
                })
                .collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro building an [`Atom`]: `atom!("R"; x, y, @"c")`.
///
/// Bare identifiers become variables, `@expr` becomes a constant.
///
/// ```
/// use accltl_relational::{atom, Term, Value};
/// let a = atom!("Address"; s, p, @"Jones", h);
/// assert_eq!(a.predicate, "Address");
/// assert_eq!(a.terms[2], Term::Const(Value::str("Jones")));
/// ```
#[macro_export]
macro_rules! atom {
    ($pred:expr $(; $($rest:tt)*)?) => {
        $crate::Atom::new($pred, $crate::terms![$($($rest)*)?])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_and_constants_are_collected() {
        let a = atom!("R"; x, @"c", y, x);
        assert_eq!(a.arity(), 4);
        assert_eq!(
            a.variables(),
            BTreeSet::from([VarId::new("x"), VarId::new("y")])
        );
        assert_eq!(a.constants(), BTreeSet::from([Value::str("c")]));
    }

    #[test]
    fn renaming_and_substitution() {
        let a = atom!("R"; x, y);
        let renamed = a.rename_vars(|v| format!("{v}_7"));
        assert_eq!(renamed, atom!("R"; x_7, y_7));

        let substituted = a.substitute(|v| {
            if v == "x" {
                Some(Term::constant(1))
            } else {
                None
            }
        });
        assert_eq!(substituted, atom!("R"; @1, y));
    }

    #[test]
    fn with_predicate_changes_only_the_name() {
        let a = atom!("R"; x);
        assert_eq!(a.with_predicate("R_pre"), atom!("R_pre"; x));
    }

    #[test]
    fn display_renders_prolog_style() {
        assert_eq!(atom!("R"; x, @1).to_string(), "R(x, 1)");
        assert_eq!(atom!("P").to_string(), "P()");
    }
}
