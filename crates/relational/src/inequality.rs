//! Conjunctive queries with inequalities (`CQ≠`).
//!
//! Section 5.1 of the paper extends the transition languages with
//! inequalities, which is what makes functional dependencies expressible
//! (Example 2.4).  Evaluation enumerates homomorphisms of the positive part
//! and filters them through the inequality atoms.

use std::collections::BTreeSet;
use std::fmt;

use crate::cq::{for_each_homomorphism, Assignment, ConjunctiveQuery};
use crate::overlay::InstanceView;
use crate::term::Term;
use crate::tuple::Tuple;
use crate::value::Value;

/// A conjunctive query extended with inequality atoms `t ≠ t'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InequalityCq {
    /// The positive conjunctive part (head and atoms).
    pub cq: ConjunctiveQuery,
    /// The inequality atoms.
    pub inequalities: Vec<(Term, Term)>,
}

impl InequalityCq {
    /// Creates a conjunctive query with inequalities.
    #[must_use]
    pub fn new(cq: ConjunctiveQuery, inequalities: Vec<(Term, Term)>) -> Self {
        InequalityCq { cq, inequalities }
    }

    /// Wraps a plain conjunctive query (no inequalities).
    #[must_use]
    pub fn plain(cq: ConjunctiveQuery) -> Self {
        InequalityCq {
            cq,
            inequalities: Vec::new(),
        }
    }

    /// True if the query has no inequality atoms.
    #[must_use]
    pub fn is_plain(&self) -> bool {
        self.inequalities.is_empty()
    }

    /// Number of atoms including inequalities.
    #[must_use]
    pub fn size(&self) -> usize {
        self.cq.size() + self.inequalities.len()
    }

    fn resolve(term: &Term, assignment: &Assignment) -> Option<Value> {
        match term {
            Term::Const(v) => Some(*v),
            Term::Var(name) => assignment.get(*name).copied(),
        }
    }

    fn inequalities_hold(&self, assignment: &Assignment) -> bool {
        self.inequalities.iter().all(|(l, r)| {
            match (Self::resolve(l, assignment), Self::resolve(r, assignment)) {
                (Some(a), Some(b)) => a != b,
                // Unsafe inequality (a variable not bound by the positive
                // part): treat it as vacuously true, matching the usual
                // active-domain semantics where an unconstrained existential
                // witness distinct from the other side always exists.
                _ => true,
            }
        })
    }

    /// True if the query has a satisfying homomorphism on the instance (or
    /// any [`InstanceView`]).
    #[must_use]
    pub fn holds(&self, instance: &impl InstanceView) -> bool {
        let mut found = false;
        for_each_homomorphism(
            &self.cq.atoms,
            instance,
            &Assignment::new(),
            &mut |assignment| {
                if self.inequalities_hold(assignment) {
                    found = true;
                    true
                } else {
                    false
                }
            },
        );
        found
    }

    /// Evaluates the query, projecting satisfying assignments onto the head.
    #[must_use]
    pub fn evaluate(&self, instance: &impl InstanceView) -> BTreeSet<Tuple> {
        let mut results = BTreeSet::new();
        for_each_homomorphism(
            &self.cq.atoms,
            instance,
            &Assignment::new(),
            &mut |assignment| {
                if self.inequalities_hold(assignment) {
                    let tuple: Tuple = self
                        .cq
                        .head
                        .iter()
                        .filter_map(|v| assignment.get(*v).copied())
                        .collect();
                    if tuple.arity() == self.cq.head.len() {
                        results.insert(tuple);
                    }
                }
                false
            },
        );
        results
    }
}

impl fmt::Display for InequalityCq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.cq)?;
        for (l, r) in &self.inequalities {
            write!(f, ", {l} ≠ {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::{atom, cq, tuple};

    fn inst() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "a"]);
        inst.add_fact("R", tuple!["a", "b"]);
        inst
    }

    #[test]
    fn plain_query_behaves_like_cq() {
        let q = InequalityCq::plain(cq!(<- atom!("R"; x, y)));
        assert!(q.is_plain());
        assert!(q.holds(&inst()));
    }

    #[test]
    fn inequality_filters_homomorphisms() {
        let q = InequalityCq::new(
            cq!(<- atom!("R"; x, y)),
            vec![(Term::var("x"), Term::var("y"))],
        );
        assert!(q.holds(&inst()));

        let mut diag_only = Instance::new();
        diag_only.add_fact("R", tuple!["a", "a"]);
        assert!(!q.holds(&diag_only));
    }

    #[test]
    fn inequality_against_constant() {
        let q = InequalityCq::new(
            cq!([x] <- atom!("R"; x, y)),
            vec![(Term::var("y"), Term::constant("a"))],
        );
        // Only the tuple (a, b) survives the filter.
        let answers = q.evaluate(&inst());
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&tuple!["a"]));
    }

    #[test]
    fn functional_dependency_violation_query() {
        // The Example 2.4 pattern: two R-tuples agreeing on position 0 but
        // differing on position 1 witness a violation of R: 1 → 2.
        let violation = InequalityCq::new(
            cq!(<- atom!("R"; x, y), atom!("R"; x, z)),
            vec![(Term::var("y"), Term::var("z"))],
        );
        assert!(violation.holds(&inst()));

        let mut fd_ok = Instance::new();
        fd_ok.add_fact("R", tuple!["a", "a"]);
        fd_ok.add_fact("R", tuple!["b", "c"]);
        assert!(!violation.holds(&fd_ok));
    }

    #[test]
    fn evaluation_projects_head() {
        let q = InequalityCq::new(
            cq!([x, y] <- atom!("R"; x, y)),
            vec![(Term::var("x"), Term::var("y"))],
        );
        let answers = q.evaluate(&inst());
        assert_eq!(answers, BTreeSet::from([tuple!["a", "b"]]));
    }

    #[test]
    fn size_counts_inequalities() {
        let q = InequalityCq::new(
            cq!(<- atom!("R"; x, y)),
            vec![(Term::var("x"), Term::var("y"))],
        );
        assert_eq!(q.size(), 2);
    }

    #[test]
    fn display_appends_inequalities() {
        let q = InequalityCq::new(
            cq!(<- atom!("R"; x, y)),
            vec![(Term::var("x"), Term::var("y"))],
        );
        assert!(q.to_string().contains("≠"));
    }
}
