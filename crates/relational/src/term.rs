//! Terms: variables and constants appearing in query atoms.

use std::fmt;

use crate::symbols::VarId;
use crate::value::Value;

/// A term in a query atom: either a variable (identified by interned name) or
/// a constant value.  Terms are `Copy`: cloning one in the homomorphism and
/// unification inner loops is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A first-order variable.
    Var(VarId),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for variables.
    #[must_use]
    pub fn var(name: impl Into<VarId>) -> Self {
        Term::Var(name.into())
    }

    /// Convenience constructor for constants.
    #[must_use]
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// Returns the variable name if this term is a variable.
    #[must_use]
    pub fn as_var(&self) -> Option<&'static str> {
        match self {
            Term::Var(name) => Some(name.as_str()),
            Term::Const(_) => None,
        }
    }

    /// Returns the variable id if this term is a variable.
    #[must_use]
    pub fn as_var_id(&self) -> Option<VarId> {
        match self {
            Term::Var(name) => Some(*name),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant value if this term is a constant.
    #[must_use]
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }

    /// True if the term is a variable.
    #[must_use]
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Renames the variable (if any) using the provided function.
    #[must_use]
    pub fn rename_var(&self, f: impl Fn(&str) -> String) -> Term {
        match self {
            Term::Var(name) => Term::Var(VarId::new(&f(name.as_str()))),
            Term::Const(v) => Term::Const(*v),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(name) => write!(f, "{name}"),
            Term::Const(v) => write!(f, "{v}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// Convenience macro building a `Vec<Term>` where bare identifiers become
/// variables and `@expr` becomes a constant.
///
/// ```
/// use accltl_relational::{terms, Term, Value};
/// let ts = terms![x, y, @"Jones", @7];
/// assert_eq!(ts[0], Term::var("x"));
/// assert_eq!(ts[2], Term::Const(Value::str("Jones")));
/// assert_eq!(ts[3], Term::Const(Value::Int(7)));
/// ```
#[macro_export]
macro_rules! terms {
    () => { Vec::<$crate::Term>::new() };
    ($($rest:tt)+) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut __terms: Vec<$crate::Term> = Vec::new();
            $crate::terms_push!(__terms; $($rest)+);
            __terms
        }
    }};
}

/// Internal helper for [`terms!`]; not intended for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! terms_push {
    ($v:ident;) => {};
    ($v:ident; @ $c:expr, $($rest:tt)*) => {
        $v.push($crate::Term::Const($crate::Value::from($c)));
        $crate::terms_push!($v; $($rest)*);
    };
    ($v:ident; @ $c:expr) => {
        $v.push($crate::Term::Const($crate::Value::from($c)));
    };
    ($v:ident; $x:ident, $($rest:tt)*) => {
        $v.push($crate::Term::var(stringify!($x)));
        $crate::terms_push!($v; $($rest)*);
    };
    ($v:ident; $x:ident) => {
        $v.push($crate::Term::var(stringify!($x)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Term::var("x");
        let c = Term::constant("Jones");
        assert!(v.is_var());
        assert!(!c.is_var());
        assert_eq!(v.as_var(), Some("x"));
        assert_eq!(v.as_var_id(), Some(VarId::new("x")));
        assert_eq!(c.as_const(), Some(&Value::str("Jones")));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn renaming_only_touches_variables() {
        let v = Term::var("x").rename_var(|n| format!("{n}_1"));
        let c = Term::constant(3).rename_var(|n| format!("{n}_1"));
        assert_eq!(v, Term::var("x_1"));
        assert_eq!(c, Term::constant(3));
    }

    #[test]
    fn terms_macro_mixes_vars_and_constants() {
        let ts = terms![a, @"k", b, @42];
        assert_eq!(
            ts,
            vec![
                Term::var("a"),
                Term::constant("k"),
                Term::var("b"),
                Term::constant(42),
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::constant(5).to_string(), "5");
    }
}
