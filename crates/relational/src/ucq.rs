//! Positive existential first-order formulas and unions of conjunctive
//! queries.
//!
//! The paper's transition language `FO∃+Acc` consists of positive existential
//! sentences over the `SchAcc` vocabulary; this module provides the generic
//! formula AST ([`PosFormula`]) over *any* relational vocabulary, its
//! evaluation, and its compilation into a union of conjunctive queries
//! (disjunctive normal form), which is what the containment and
//! canonical-database machinery operates on.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::OnceLock;

use crate::atom::Atom;
use crate::cq::ConjunctiveQuery;
use crate::error::RelationalError;
use crate::guard_cache::{sentence_cache_id, GuardCache};
use crate::inequality::InequalityCq;
use crate::overlay::InstanceView;
use crate::symbols::{RelId, VarId};
use crate::term::Term;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A positive existential first-order formula, optionally with inequalities
/// (`FO∃+` / `FO∃+,≠` in the paper's notation).
///
/// Negation is *not* part of this AST: the paper's languages apply negation
/// only at the level of whole sentences (inside `AccLTL` formulas or
/// A-automaton guards), which is handled by the `accltl-logic` and
/// `accltl-automata` crates.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PosFormula {
    /// A relational atom.
    Atom(Atom),
    /// Equality between two terms.
    Eq(Term, Term),
    /// Inequality between two terms (only in the `≠` extension of Section 5).
    Neq(Term, Term),
    /// Conjunction.
    And(Vec<PosFormula>),
    /// Disjunction.
    Or(Vec<PosFormula>),
    /// Existential quantification.
    Exists(Vec<VarId>, Box<PosFormula>),
    /// The formula that is always true (empty conjunction).
    True,
    /// The formula that is always false (empty disjunction).
    False,
}

impl PosFormula {
    /// Atom constructor.
    #[must_use]
    pub fn atom(atom: Atom) -> Self {
        PosFormula::Atom(atom)
    }

    /// Conjunction constructor, flattening trivial cases.
    #[must_use]
    pub fn and(parts: Vec<PosFormula>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                PosFormula::True => {}
                PosFormula::False => return PosFormula::False,
                PosFormula::And(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        match flattened.len() {
            0 => PosFormula::True,
            1 => flattened.into_iter().next().expect("len checked"),
            _ => PosFormula::And(flattened),
        }
    }

    /// Disjunction constructor, flattening trivial cases.
    #[must_use]
    pub fn or(parts: Vec<PosFormula>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                PosFormula::False => {}
                PosFormula::True => return PosFormula::True,
                PosFormula::Or(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        match flattened.len() {
            0 => PosFormula::False,
            1 => flattened.into_iter().next().expect("len checked"),
            _ => PosFormula::Or(flattened),
        }
    }

    /// Existential quantification constructor.
    #[must_use]
    pub fn exists(vars: Vec<impl Into<VarId>>, body: PosFormula) -> Self {
        let vars: Vec<VarId> = vars.into_iter().map(Into::into).collect();
        if vars.is_empty() {
            body
        } else {
            PosFormula::Exists(vars, Box::new(body))
        }
    }

    /// Existentially closes the formula over all its free variables,
    /// producing a sentence.
    #[must_use]
    pub fn existential_closure(self) -> Self {
        let free: Vec<VarId> = self.free_variables().into_iter().collect();
        PosFormula::exists(free, self)
    }

    /// The number of atoms, equalities and inequalities (a size measure used
    /// in complexity sweeps).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            PosFormula::Atom(_) | PosFormula::Eq(..) | PosFormula::Neq(..) => 1,
            PosFormula::And(ps) | PosFormula::Or(ps) => ps.iter().map(PosFormula::size).sum(),
            PosFormula::Exists(_, body) => body.size(),
            PosFormula::True | PosFormula::False => 0,
        }
    }

    /// True if the formula contains at least one inequality.
    #[must_use]
    pub fn has_inequalities(&self) -> bool {
        match self {
            PosFormula::Neq(..) => true,
            PosFormula::Atom(_) | PosFormula::Eq(..) | PosFormula::True | PosFormula::False => {
                false
            }
            PosFormula::And(ps) | PosFormula::Or(ps) => ps.iter().any(PosFormula::has_inequalities),
            PosFormula::Exists(_, body) => body.has_inequalities(),
        }
    }

    /// The predicates mentioned in the formula.
    #[must_use]
    pub fn predicates(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        self.collect_predicates(&mut out);
        out
    }

    fn collect_predicates(&self, out: &mut BTreeSet<RelId>) {
        match self {
            PosFormula::Atom(a) => {
                out.insert(a.predicate);
            }
            PosFormula::And(ps) | PosFormula::Or(ps) => {
                for p in ps {
                    p.collect_predicates(out);
                }
            }
            PosFormula::Exists(_, body) => body.collect_predicates(out),
            PosFormula::Eq(..) | PosFormula::Neq(..) | PosFormula::True | PosFormula::False => {}
        }
    }

    /// The constants mentioned in the formula.
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<Value>) {
        match self {
            PosFormula::Atom(a) => out.extend(a.constants()),
            PosFormula::Eq(l, r) | PosFormula::Neq(l, r) => {
                for t in [l, r] {
                    if let Term::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            PosFormula::And(ps) | PosFormula::Or(ps) => {
                for p in ps {
                    p.collect_constants(out);
                }
            }
            PosFormula::Exists(_, body) => body.collect_constants(out),
            PosFormula::True | PosFormula::False => {}
        }
    }

    /// The free variables of the formula.
    #[must_use]
    pub fn free_variables(&self) -> BTreeSet<VarId> {
        match self {
            PosFormula::Atom(a) => a.variables(),
            PosFormula::Eq(l, r) | PosFormula::Neq(l, r) => {
                [l, r].into_iter().filter_map(Term::as_var_id).collect()
            }
            PosFormula::And(ps) | PosFormula::Or(ps) => {
                ps.iter().flat_map(PosFormula::free_variables).collect()
            }
            PosFormula::Exists(vars, body) => {
                let mut free = body.free_variables();
                for v in vars {
                    free.remove(v);
                }
                free
            }
            PosFormula::True | PosFormula::False => BTreeSet::new(),
        }
    }

    /// Renames every predicate of the formula with `f`.
    #[must_use]
    pub fn rename_predicates(&self, f: impl Fn(&str) -> String) -> PosFormula {
        fn go<F: Fn(&str) -> String>(this: &PosFormula, f: &F) -> PosFormula {
            match this {
                PosFormula::Atom(a) => {
                    PosFormula::Atom(a.with_predicate(RelId::new(&f(a.predicate.as_str()))))
                }
                PosFormula::Eq(l, r) => PosFormula::Eq(*l, *r),
                PosFormula::Neq(l, r) => PosFormula::Neq(*l, *r),
                PosFormula::And(ps) => PosFormula::And(ps.iter().map(|p| go(p, f)).collect()),
                PosFormula::Or(ps) => PosFormula::Or(ps.iter().map(|p| go(p, f)).collect()),
                PosFormula::Exists(vars, body) => {
                    PosFormula::Exists(vars.clone(), Box::new(go(body, f)))
                }
                PosFormula::True => PosFormula::True,
                PosFormula::False => PosFormula::False,
            }
        }
        go(self, &f)
    }

    /// Compiles the (inequality-free) formula into a union of conjunctive
    /// queries in disjunctive normal form.  Free variables become the head of
    /// every disjunct (in sorted order).
    ///
    /// # Errors
    /// Returns [`RelationalError::MalformedQuery`] if the formula contains an
    /// inequality; use [`PosFormula::to_inequality_union`] instead.
    pub fn to_ucq(&self) -> Result<UnionOfCqs> {
        if self.has_inequalities() {
            return Err(RelationalError::MalformedQuery(
                "formula contains inequalities; use to_inequality_union".into(),
            ));
        }
        let union = self.to_inequality_union();
        Ok(UnionOfCqs {
            disjuncts: union.into_iter().map(|icq| icq.cq).collect(),
        })
    }

    /// Compiles the formula into a union of conjunctive queries with
    /// inequalities (DNF).  Free variables become the head of every disjunct.
    #[must_use]
    pub fn to_inequality_union(&self) -> Vec<InequalityCq> {
        let head: Vec<VarId> = self.free_variables().into_iter().collect();
        let mut counter = 0usize;
        let disjuncts = dnf(self, &mut counter);
        disjuncts
            .into_iter()
            .filter_map(|d| d.into_inequality_cq(&head))
            .collect()
    }

    /// Evaluates the *sentence* (closed formula) on an instance (or any
    /// [`InstanceView`], such as a configuration overlay).
    ///
    /// Formulas with free variables are existentially closed first, matching
    /// the paper's convention that `L` atoms inside `AccLTL` are sentences.
    /// Hot loops that evaluate the same sentence against many structures
    /// should go through [`CompiledSentence`], which performs the DNF
    /// compilation once.
    #[must_use]
    pub fn holds(&self, instance: &impl InstanceView) -> bool {
        CompiledSentence::compile(self).holds(instance)
    }

    /// Evaluates the formula's free variables on an instance, returning the
    /// set of satisfying assignments projected onto the sorted free-variable
    /// list.
    #[must_use]
    pub fn evaluate(&self, instance: &impl InstanceView) -> BTreeSet<Tuple> {
        self.to_inequality_union()
            .iter()
            .flat_map(|icq| icq.evaluate(instance))
            .collect()
    }
}

impl fmt::Display for PosFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosFormula::Atom(a) => write!(f, "{a}"),
            PosFormula::Eq(l, r) => write!(f, "{l} = {r}"),
            PosFormula::Neq(l, r) => write!(f, "{l} ≠ {r}"),
            PosFormula::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            PosFormula::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            PosFormula::Exists(vars, body) => {
                let names: Vec<&str> = vars.iter().map(|v| v.as_str()).collect();
                write!(f, "∃{} {body}", names.join(" "))
            }
            PosFormula::True => write!(f, "⊤"),
            PosFormula::False => write!(f, "⊥"),
        }
    }
}

/// A DNF disjunct under construction.
#[derive(Debug, Clone, Default)]
struct Disjunct {
    atoms: Vec<Atom>,
    eqs: Vec<(Term, Term)>,
    neqs: Vec<(Term, Term)>,
}

impl Disjunct {
    fn merge(mut self, other: Disjunct) -> Disjunct {
        self.atoms.extend(other.atoms);
        self.eqs.extend(other.eqs);
        self.neqs.extend(other.neqs);
        self
    }

    /// Resolves equality atoms by substitution and produces a conjunctive
    /// query with inequalities; returns `None` if an equality between two
    /// distinct constants makes the disjunct unsatisfiable.
    fn into_inequality_cq(self, head: &[VarId]) -> Option<InequalityCq> {
        let mut atoms = self.atoms;
        let mut neqs = self.neqs;
        let mut eqs = self.eqs;
        // Iteratively apply equalities as substitutions.
        while let Some((l, r)) = eqs.pop() {
            match (l, r) {
                (Term::Const(a), Term::Const(b)) => {
                    if a != b {
                        return None;
                    }
                }
                (Term::Var(v), t) | (t, Term::Var(v)) => {
                    // Never substitute away a head variable in favour of
                    // another variable; prefer replacing the non-head one.
                    let (from, to) = match &t {
                        Term::Var(other) if head.contains(&v) && !head.contains(other) => {
                            (*other, Term::Var(v))
                        }
                        _ => (v, t),
                    };
                    let subst = |name: VarId| -> Option<Term> { (name == from).then_some(to) };
                    atoms = atoms.iter().map(|a| a.substitute(subst)).collect();
                    let map_term = |term: &Term| -> Term {
                        match term {
                            Term::Var(name) if *name == from => to,
                            other => *other,
                        }
                    };
                    eqs = eqs
                        .iter()
                        .map(|(a, b)| (map_term(a), map_term(b)))
                        .collect();
                    neqs = neqs
                        .iter()
                        .map(|(a, b)| (map_term(a), map_term(b)))
                        .collect();
                }
            }
        }
        // A syntactic inequality between identical terms is unsatisfiable.
        if neqs.iter().any(|(a, b)| a == b) {
            return None;
        }
        // Head variables eliminated by equality substitution are re-introduced
        // via a generated equality atom: this only happens when a head
        // variable was equated to a constant, in which case the head variable
        // is simply absent from the disjunct. We keep such disjuncts only when
        // every head variable is still present (the paper's sentences have no
        // free variables, so this corner case does not arise there).
        let cq = ConjunctiveQuery::with_head(head.to_vec(), atoms);
        let body_vars = cq.body_variables();
        if !cq.head.iter().all(|h| body_vars.contains(h)) {
            return None;
        }
        Some(InequalityCq::new(cq, neqs))
    }
}

/// Converts a formula to DNF, renaming bound variables apart to avoid capture.
fn dnf(formula: &PosFormula, counter: &mut usize) -> Vec<Disjunct> {
    match formula {
        PosFormula::Atom(a) => vec![Disjunct {
            atoms: vec![a.clone()],
            ..Disjunct::default()
        }],
        PosFormula::Eq(l, r) => vec![Disjunct {
            eqs: vec![(*l, *r)],
            ..Disjunct::default()
        }],
        PosFormula::Neq(l, r) => vec![Disjunct {
            neqs: vec![(*l, *r)],
            ..Disjunct::default()
        }],
        PosFormula::True => vec![Disjunct::default()],
        PosFormula::False => Vec::new(),
        PosFormula::Or(ps) => ps.iter().flat_map(|p| dnf(p, counter)).collect(),
        PosFormula::And(ps) => {
            let mut acc = vec![Disjunct::default()];
            for p in ps {
                let branches = dnf(p, counter);
                let mut next = Vec::with_capacity(acc.len() * branches.len());
                for a in &acc {
                    for b in &branches {
                        next.push(a.clone().merge(b.clone()));
                    }
                }
                acc = next;
            }
            acc
        }
        PosFormula::Exists(vars, body) => {
            // Rename the bound variables apart so that distinct quantifier
            // scopes never clash after flattening.
            *counter += 1;
            let tag = *counter;
            let renamed = rename_bound(body, vars, tag);
            dnf(&renamed, counter)
        }
    }
}

fn rename_bound(body: &PosFormula, vars: &[VarId], tag: usize) -> PosFormula {
    let rename = |name: &str| -> String {
        if vars.iter().any(|v| *v == name) {
            format!("{name}\u{B7}{tag}")
        } else {
            name.to_owned()
        }
    };
    map_vars(body, &rename)
}

fn map_vars<F: Fn(&str) -> String>(formula: &PosFormula, rename: &F) -> PosFormula {
    match formula {
        PosFormula::Atom(a) => PosFormula::Atom(a.rename_vars(rename)),
        PosFormula::Eq(l, r) => PosFormula::Eq(l.rename_var(rename), r.rename_var(rename)),
        PosFormula::Neq(l, r) => PosFormula::Neq(l.rename_var(rename), r.rename_var(rename)),
        PosFormula::And(ps) => PosFormula::And(ps.iter().map(|p| map_vars(p, rename)).collect()),
        PosFormula::Or(ps) => PosFormula::Or(ps.iter().map(|p| map_vars(p, rename)).collect()),
        PosFormula::Exists(vars, body) => {
            // Bound variables of inner quantifiers are renamed consistently.
            let new_vars: Vec<VarId> = vars
                .iter()
                .map(|v| VarId::new(&rename(v.as_str())))
                .collect();
            PosFormula::Exists(new_vars, Box::new(map_vars(body, rename)))
        }
        PosFormula::True => PosFormula::True,
        PosFormula::False => PosFormula::False,
    }
}

/// A positive sentence compiled to its DNF of conjunctive queries with
/// inequalities, ready for repeated evaluation.
///
/// [`PosFormula::holds`] existentially closes and DNF-compiles the formula on
/// every call; the bounded searches evaluate the *same* handful of sentences
/// against thousands of transition structures, so they compile each sentence
/// once up front and reuse it through this type.  Each disjunct evaluates
/// through [`crate::cq::for_each_homomorphism`], so guard checks pick up the
/// per-position value indexes ([`crate::index`]) of whatever view they run
/// against — for overlay-backed transition structures that means posting
/// lists shared with every other overlay over the same `Arc` base.
#[derive(Debug, Clone)]
pub struct CompiledSentence {
    disjuncts: Vec<InequalityCq>,
    /// The closed source formula (kept for the lazy cache metadata below).
    closed: PosFormula,
    /// Cache metadata, resolved on the first [`CompiledSentence::holds_cached`]
    /// call — plain [`CompiledSentence::holds`] users (and with them
    /// [`PosFormula::holds`], which compiles per call) never touch the
    /// process-wide id registry.
    meta: OnceLock<CacheMeta>,
}

/// Lazily computed memoization metadata of a [`CompiledSentence`].
#[derive(Debug, Clone)]
struct CacheMeta {
    /// Structural cache id: equal closed formulas resolve to equal ids
    /// (process-wide registry), so independently compiled copies of one
    /// guard share verdict-cache entries.
    id: u32,
    /// The predicates the closed formula mentions, sorted — the restriction
    /// list for [`CompiledSentence::holds_cached`] fingerprints (a verdict
    /// depends only on the facts of these relations).
    predicates: Vec<RelId>,
}

impl CompiledSentence {
    /// Existentially closes and DNF-compiles a formula.
    #[must_use]
    pub fn compile(formula: &PosFormula) -> Self {
        let closed = formula.clone().existential_closure();
        CompiledSentence {
            disjuncts: closed.to_inequality_union(),
            closed,
            meta: OnceLock::new(),
        }
    }

    /// True if the compiled sentence holds on the instance (or any
    /// [`InstanceView`]).  Agrees with [`PosFormula::holds`] on the source
    /// formula by construction.
    #[must_use]
    pub fn holds(&self, instance: &impl InstanceView) -> bool {
        self.disjuncts.iter().any(|icq| icq.holds(instance))
    }

    fn meta(&self) -> &CacheMeta {
        self.meta.get_or_init(|| CacheMeta {
            id: sentence_cache_id(&self.closed),
            predicates: self.closed.predicates().into_iter().collect(),
        })
    }

    /// The structural cache id of the sentence (equal closed formulas share
    /// one id, process-wide).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.meta().id
    }

    /// The sorted predicate list of the sentence.
    #[must_use]
    pub fn predicates(&self) -> &[RelId] {
        &self.meta().predicates
    }

    /// [`CompiledSentence::holds`], memoized through a [`GuardCache`].
    ///
    /// The cache key is the sentence's id paired with the view's
    /// [`StructureKey`](crate::guard_cache::StructureKey) *restricted to the
    /// sentence's predicates* — a positive existential sentence only ever
    /// reads facts of relations it mentions, so structures differing
    /// elsewhere (typically only in the `IsBind` fact) legitimately share a
    /// verdict.  Keys are content-addressed, so structurally equal
    /// configurations share entries across states, overlay chains and batch
    /// properties.  Falls back to plain evaluation, with identical verdicts
    /// by construction, when `memoize` is false (the caller's per-state
    /// [`crate::guard_cache::GUARD_CACHE_CUTOFF`] size gate, usually
    /// [`GuardCache::memoize_gate`] — tiny evaluations beat a probe),
    /// when the cache is disabled, or when the view cannot produce a key;
    /// every consult is counted either way, so cached and uncached runs
    /// report the same `hits + misses` total.
    #[must_use]
    pub fn holds_cached(
        &self,
        structure: &impl InstanceView,
        cache: &GuardCache,
        memoize: bool,
    ) -> bool {
        if memoize && cache.enabled() {
            let meta = self.meta();
            if let Some(key) = structure.guard_key(&meta.predicates) {
                if let Some(verdict) = cache.lookup(meta.id, &key) {
                    return verdict;
                }
                let verdict = self.holds(structure);
                cache.insert(meta.id, key, verdict);
                return verdict;
            }
        }
        cache.note_uncached();
        self.holds(structure)
    }
}

/// A union of conjunctive queries (all sharing the same head arity).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnionOfCqs {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfCqs {
    /// Creates a UCQ from disjuncts.
    #[must_use]
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        UnionOfCqs { disjuncts }
    }

    /// A UCQ with a single disjunct.
    #[must_use]
    pub fn single(cq: ConjunctiveQuery) -> Self {
        UnionOfCqs {
            disjuncts: vec![cq],
        }
    }

    /// True if some disjunct holds on the instance (or any [`InstanceView`]).
    #[must_use]
    pub fn holds(&self, instance: &impl InstanceView) -> bool {
        self.disjuncts.iter().any(|d| d.holds(instance))
    }

    /// Evaluates all disjuncts and unions their answers.
    #[must_use]
    pub fn evaluate(&self, instance: &impl InstanceView) -> BTreeSet<Tuple> {
        self.disjuncts
            .iter()
            .flat_map(|d| d.evaluate(instance))
            .collect()
    }

    /// The number of disjuncts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// True if the union is empty (the always-false query).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Total number of atoms across disjuncts.
    #[must_use]
    pub fn size(&self) -> usize {
        self.disjuncts.iter().map(ConjunctiveQuery::size).sum()
    }
}

impl fmt::Display for UnionOfCqs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∪  ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::{atom, tuple};

    fn inst() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("R", tuple!["a", "b"]);
        inst.add_fact("S", tuple!["b"]);
        inst
    }

    #[test]
    fn constructors_simplify_trivial_cases() {
        assert_eq!(PosFormula::and(vec![]), PosFormula::True);
        assert_eq!(PosFormula::or(vec![]), PosFormula::False);
        assert_eq!(
            PosFormula::and(vec![PosFormula::True, PosFormula::atom(atom!("R"; x))]),
            PosFormula::atom(atom!("R"; x))
        );
        assert_eq!(
            PosFormula::and(vec![PosFormula::False, PosFormula::atom(atom!("R"; x))]),
            PosFormula::False
        );
        assert_eq!(
            PosFormula::or(vec![PosFormula::True, PosFormula::atom(atom!("R"; x))]),
            PosFormula::True
        );
    }

    #[test]
    fn atom_sentence_evaluation() {
        let f = PosFormula::exists(vec!["x", "y"], PosFormula::atom(atom!("R"; x, y)));
        assert!(f.holds(&inst()));
        let g = PosFormula::exists(vec!["x"], PosFormula::atom(atom!("T"; x)));
        assert!(!g.holds(&inst()));
    }

    #[test]
    fn conjunction_with_join_and_disjunction() {
        // ∃x∃y R(x,y) ∧ S(y)
        let f = PosFormula::exists(
            vec!["x", "y"],
            PosFormula::and(vec![
                PosFormula::atom(atom!("R"; x, y)),
                PosFormula::atom(atom!("S"; y)),
            ]),
        );
        assert!(f.holds(&inst()));

        // ∃x∃y R(x,y) ∧ S(x) — fails since S only holds of "b".
        let g = PosFormula::exists(
            vec!["x", "y"],
            PosFormula::and(vec![
                PosFormula::atom(atom!("R"; x, y)),
                PosFormula::atom(atom!("S"; x)),
            ]),
        );
        assert!(!g.holds(&inst()));

        let h = PosFormula::or(vec![g.clone(), f.clone()]);
        assert!(h.holds(&inst()));
    }

    #[test]
    fn equality_forces_identification() {
        // ∃x∃y R(x,y) ∧ x = y — no tuple has equal components.
        let f = PosFormula::exists(
            vec!["x", "y"],
            PosFormula::and(vec![
                PosFormula::atom(atom!("R"; x, y)),
                PosFormula::Eq(Term::var("x"), Term::var("y")),
            ]),
        );
        assert!(!f.holds(&inst()));
        let mut richer = inst();
        richer.add_fact("R", tuple!["c", "c"]);
        assert!(f.holds(&richer));
    }

    #[test]
    fn constant_equality_is_resolved_statically() {
        let sat = PosFormula::and(vec![
            PosFormula::Eq(Term::constant(1), Term::constant(1)),
            PosFormula::exists(vec!["x", "y"], PosFormula::atom(atom!("R"; x, y))),
        ]);
        assert!(sat.holds(&inst()));
        let unsat = PosFormula::and(vec![
            PosFormula::Eq(Term::constant(1), Term::constant(2)),
            PosFormula::exists(vec!["x", "y"], PosFormula::atom(atom!("R"; x, y))),
        ]);
        assert!(!unsat.holds(&inst()));
    }

    #[test]
    fn inequality_evaluation() {
        // ∃x∃y R(x,y) ∧ x ≠ y holds; with equal components only it fails.
        let f = PosFormula::exists(
            vec!["x", "y"],
            PosFormula::and(vec![
                PosFormula::atom(atom!("R"; x, y)),
                PosFormula::Neq(Term::var("x"), Term::var("y")),
            ]),
        );
        assert!(f.has_inequalities());
        assert!(f.holds(&inst()));

        let mut only_diag = Instance::new();
        only_diag.add_fact("R", tuple!["c", "c"]);
        assert!(!f.holds(&only_diag));
    }

    #[test]
    fn to_ucq_rejects_inequalities_and_builds_dnf() {
        let with_neq = PosFormula::Neq(Term::var("x"), Term::var("y"));
        assert!(with_neq.to_ucq().is_err());

        let f = PosFormula::or(vec![
            PosFormula::exists(vec!["x"], PosFormula::atom(atom!("S"; x))),
            PosFormula::exists(
                vec!["x", "y"],
                PosFormula::and(vec![
                    PosFormula::atom(atom!("R"; x, y)),
                    PosFormula::atom(atom!("S"; y)),
                ]),
            ),
        ]);
        let ucq = f.to_ucq().unwrap();
        assert_eq!(ucq.len(), 2);
        assert!(ucq.holds(&inst()));
    }

    #[test]
    fn nested_quantifiers_do_not_capture() {
        // (∃x R(x,x)) ∨ (∃x S(x)) — the two x's are independent.
        let f = PosFormula::or(vec![
            PosFormula::exists(vec!["x"], PosFormula::atom(atom!("R"; x, x))),
            PosFormula::exists(vec!["x"], PosFormula::atom(atom!("S"; x))),
        ]);
        let ucq = f.to_ucq().unwrap();
        assert_eq!(ucq.len(), 2);
        assert!(f.holds(&inst()));
    }

    #[test]
    fn free_variable_evaluation_projects_answers() {
        // R(x, y) with free x: answers are first components.
        let f = PosFormula::exists(vec!["y"], PosFormula::atom(atom!("R"; x, y)));
        let answers = f.evaluate(&inst());
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&tuple!["a"]));
    }

    #[test]
    fn size_and_predicates_and_constants() {
        let f = PosFormula::and(vec![
            PosFormula::atom(atom!("R"; x, @"k")),
            PosFormula::or(vec![
                PosFormula::atom(atom!("S"; x)),
                PosFormula::Eq(Term::var("x"), Term::constant(3)),
            ]),
        ]);
        assert_eq!(f.size(), 3);
        assert_eq!(
            f.predicates(),
            BTreeSet::from([RelId::new("R"), RelId::new("S")])
        );
        assert_eq!(
            f.constants(),
            BTreeSet::from([Value::str("k"), Value::Int(3)])
        );
    }

    #[test]
    fn rename_predicates_recurses() {
        let f = PosFormula::exists(
            vec!["x"],
            PosFormula::or(vec![
                PosFormula::atom(atom!("R"; x)),
                PosFormula::atom(atom!("S"; x)),
            ]),
        );
        let renamed = f.rename_predicates(|p| format!("{p}_post"));
        assert_eq!(
            renamed.predicates(),
            BTreeSet::from([RelId::new("R_post"), RelId::new("S_post")])
        );
    }

    #[test]
    fn true_and_false_evaluate_correctly() {
        assert!(PosFormula::True.holds(&Instance::new()));
        assert!(!PosFormula::False.holds(&inst()));
    }

    #[test]
    fn display_is_readable() {
        let f = PosFormula::exists(
            vec!["x"],
            PosFormula::and(vec![
                PosFormula::atom(atom!("R"; x, x)),
                PosFormula::Neq(Term::var("x"), Term::constant(1)),
            ]),
        );
        let s = f.to_string();
        assert!(s.contains("∃x"));
        assert!(s.contains("≠"));
    }
}
