//! The `ACCLTL_STATS=1` human-readable end-of-run summary.
//!
//! All examples call [`print_if_enabled`] as their last statement; with the
//! variable unset the call is a no-op and stdout stays byte-identical to
//! the uninstrumented build (the CI determinism smokes diff exactly this).
//! With `ACCLTL_STATS=1` the process-wide metrics registry is rendered as
//! one block: search totals, cache hit-rates, and per-span phase timings.

use std::fmt::Write as _;

use crate::metrics::{snapshot, MetricsSnapshot};
use crate::trace::stats_enabled;

/// Renders the current metrics registry as the human-readable summary
/// block.  Exposed separately from [`print_if_enabled`] so tests can assert
/// on the rendering without capturing stdout.
pub fn render() -> String {
    render_snapshot(&snapshot())
}

/// Renders `snap` as the summary block (see [`render`]).
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "── accltl stats ──────────────────────────────");

    let mut plain: Vec<(&str, u64)> = Vec::new();
    let mut span_ns: Vec<(String, u64, u64)> = Vec::new();
    for (name, value) in &snap.counters {
        if let Some(base) = name
            .strip_prefix("span.")
            .and_then(|r| r.strip_suffix(".ns"))
        {
            let calls = snap.counter(&format!("span.{base}.calls"));
            span_ns.push((base.to_owned(), *value, calls));
        } else if name.starts_with("span.") {
            // .calls counters are folded into the .ns row above.
        } else {
            plain.push((name.as_str(), *value));
        }
    }

    if !plain.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, value) in &plain {
            let _ = writeln!(out, "  {name:<34} {value}");
        }
        // Hit-rates for every `<base>.hits` / `<base>.misses` pair.
        let mut rates: Vec<(String, f64, u64)> = Vec::new();
        for (name, hits) in &plain {
            if let Some(base) = name.strip_suffix(".hits") {
                let misses = snap.counter(&format!("{base}.misses"));
                let total = hits + misses;
                if total > 0 {
                    rates.push((base.to_owned(), *hits as f64 / total as f64, total));
                }
            }
        }
        if !rates.is_empty() {
            let _ = writeln!(out, "hit rates:");
            for (base, rate, total) in rates {
                let _ = writeln!(out, "  {base:<34} {:.1}% of {total}", rate * 100.0);
            }
        }
    }

    if !span_ns.is_empty() {
        let _ = writeln!(out, "phase timings:");
        for (base, ns, calls) in &span_ns {
            let total_ms = *ns as f64 / 1e6;
            let avg_us = if *calls > 0 {
                *ns as f64 / 1e3 / *calls as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {base:<34} {total_ms:>9.3} ms total  {calls:>6} calls  {avg_us:>9.1} µs/call"
            );
        }
    }

    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "  {name:<34} {value}");
        }
    }

    let _ = writeln!(out, "──────────────────────────────────────────────");
    out
}

/// Prints the summary block to stdout if `ACCLTL_STATS=1`; otherwise does
/// nothing (and touches neither stdout nor the clock).
pub fn print_if_enabled() {
    if stats_enabled() {
        print!("{}", render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn render_folds_span_timers_and_hit_rates() {
        let mut counters = BTreeMap::new();
        counters.insert("guard_cache.hits".to_owned(), 30u64);
        counters.insert("guard_cache.misses".to_owned(), 10u64);
        counters.insert("span.engine.expand.ns".to_owned(), 2_000_000u64);
        counters.insert("span.engine.expand.calls".to_owned(), 4u64);
        let snap = MetricsSnapshot {
            counters,
            gauges: BTreeMap::new(),
        };
        let text = render_snapshot(&snap);
        assert!(text.contains("guard_cache"));
        assert!(text.contains("75.0% of 40"));
        assert!(text.contains("engine.expand"));
        assert!(text.contains("4 calls"));
        // The span counters must not also appear as plain counters.
        assert!(!text.contains("span.engine.expand.ns"));
    }
}
