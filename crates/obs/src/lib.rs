//! Observability substrate for the accltl decision-procedure stack.
//!
//! Every optimization layer in the workspace ships its own counter struct
//! ([`EngineCacheStats`](https://docs.rs/accltl-paths), `GuardCacheStats`,
//! `ChaseStats`) but, before this crate, nothing tied them together: there
//! was no timing, no phase attribution, and no machine-readable export.
//! `accltl-obs` sits at the bottom of the workspace dependency DAG (it
//! depends on nothing, every other crate may depend on it) and provides
//! three pieces:
//!
//! * [`metrics`] — a process-wide registry of named monotonic counters and
//!   gauges.  Search and chase front-ends reconcile their legacy stats
//!   structs into it at report-assembly time, so registry deltas equal the
//!   per-report struct totals exactly (property-tested in the suite).
//! * [`trace`] — structured spans (enter/exit events with wall-clock
//!   durations, parent links and per-thread attribution) plus point events,
//!   exported as JSONL when `ACCLTL_TRACE=<path>` is set.  The disabled
//!   path is zero-overhead by construction: one relaxed atomic load, no
//!   allocation, no branching beyond that load.
//! * [`summary`] — the `ACCLTL_STATS=1` human-readable end-of-run summary
//!   (explored/cost totals, cache hit-rates, span phase timings) shared by
//!   all examples.
//!
//! [`json`] is the zero-dependency JSON builder/parser both the exporter
//! and the trace validator use; the workspace is vendored-only, so no
//! serde.
//!
//! # Environment
//!
//! Both knobs follow the workspace convention (`EngineConfig::from_env` in
//! `accltl-paths` documents it): each variable is read **once per process**,
//! here on first use of the trace/summary layer.
//!
//! | variable | effect |
//! |---|---|
//! | `ACCLTL_TRACE=<path>` | append JSONL span/event records to `<path>` |
//! | `ACCLTL_STATS=1` | print a human-readable metrics summary via [`summary::print_if_enabled`] |
//!
//! With both unset, all instrumented code paths are byte-identical to the
//! uninstrumented build's output — the same contract every `ACCLTL_*`
//! ablation flag in the workspace honours.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod summary;
pub mod trace;

pub use metrics::{add, counter, gauge, snapshot, Counter, Gauge, LazyCounter, MetricsSnapshot};
pub use trace::{event, span, span_fields, stats_enabled, tracing, Span};
