//! Minimal JSON builder and parser — the workspace is vendored-only, so
//! the trace exporter and its CI validator share this zero-dependency
//! implementation instead of serde.
//!
//! The builder ([`JsonObject`]) emits objects with insertion-ordered keys
//! (trace records and run reports stay diffable); the parser ([`parse`])
//! accepts the full JSON grammar the exporter and criterion shim produce —
//! objects, arrays, strings with escapes, integers, floats, booleans and
//! null — and is strict enough to serve as the `trace_check` validator's
//! front half.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An insertion-ordered JSON object builder.  All trace records and run
/// reports in the workspace are built through this type so their key order
/// is deterministic and diffs stay readable.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_owned(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds a field whose value is already-rendered JSON (a nested object,
    /// array or number produced elsewhere).  The caller is responsible for
    /// `raw` being valid JSON.
    pub fn raw(mut self, key: &str, raw: String) -> Self {
        self.fields.push((key.to_owned(), raw));
        self
    }

    /// Renders the object as a single-line JSON string.
    pub fn build(self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(key), value);
        }
        out.push('}');
        out
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.  Integers in `i128` range are stored exactly;
    /// everything else falls back to `f64`.
    Int(i128),
    /// A JSON number outside exact-integer range, or with a fraction or
    /// exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.  Key order is not preserved; duplicate keys keep the last
    /// occurrence (standard last-wins behaviour).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact integer value if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing non-whitespace.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(input, bytes, pos),
        Some(b'[') => parse_array(input, bytes, pos),
        Some(b'"') => parse_string(input, bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", JsonValue::Null),
        Some(_) => parse_number(input, bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &[u8],
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(input, bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(input, bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(input, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = input
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates in traces would indicate corruption;
                        // replace rather than reject so validation reports
                        // the structural problem, not the code point.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar, not one byte.
                let rest = &input[*pos..];
                let ch = rest.chars().next().ok_or("invalid utf-8")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = &input[start..*pos];
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i128>() {
            return Ok(JsonValue::Int(n));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_ordered_fields() {
        let line = JsonObject::new()
            .str("ev", "enter")
            .num("id", 7)
            .bool("ok", true)
            .raw("fields", "{\"n\":1}".to_owned())
            .build();
        assert_eq!(
            line,
            "{\"ev\":\"enter\",\"id\":7,\"ok\":true,\"fields\":{\"n\":1}}"
        );
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let line = JsonObject::new()
            .str("name", "engine.run \"x\"")
            .num("t_ns", 123456789)
            .build();
        let value = parse(&line).unwrap();
        assert_eq!(
            value.get("name").unwrap().as_str(),
            Some("engine.run \"x\"")
        );
        assert_eq!(value.get("t_ns").unwrap().as_int(), Some(123456789));
    }

    #[test]
    fn parse_accepts_nested_arrays_floats_null() {
        let value = parse(" { \"a\" : [1, -2.5, null, true, \"s\"] } ").unwrap();
        let JsonValue::Array(items) = value.get("a").unwrap() else {
            panic!("not an array");
        };
        assert_eq!(items[0], JsonValue::Int(1));
        assert_eq!(items[1], JsonValue::Float(-2.5));
        assert_eq!(items[2], JsonValue::Null);
        assert_eq!(items[3], JsonValue::Bool(true));
        assert_eq!(items[4], JsonValue::Str("s".to_owned()));
    }

    #[test]
    fn parse_rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let value = parse("\"caf\\u00e9 → ok\"").unwrap();
        assert_eq!(value.as_str(), Some("café → ok"));
    }
}
