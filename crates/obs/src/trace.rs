//! Structured spans and JSONL trace export.
//!
//! A [`Span`] is an RAII guard: entering writes an `enter` record (id,
//! parent id, thread, name, timestamp, optional numeric fields), dropping
//! writes an `exit` record with the wall-clock duration.  Parent links come
//! from a thread-local span stack, so traces reconstruct the call tree per
//! worker thread.  [`event`] writes a point record with no duration.
//!
//! Everything is gated on one process-wide activity bitmask:
//!
//! * `ACCLTL_TRACE=<path>` appends JSONL records to `<path>` and enables
//!   span timing;
//! * `ACCLTL_STATS=1` enables span timing only — durations accumulate into
//!   the [`crate::metrics`] registry (`span.<name>.ns` / `span.<name>.calls`)
//!   for the end-of-run summary.
//!
//! Both variables are read **once per process**, on first use, following
//! the `EngineConfig::from_env` convention.  With neither set,
//! [`span`]/[`event`] cost one relaxed atomic load and construct a no-op
//! guard — no allocation, no clock read, no branching in callers.
//!
//! Because the environment is read only once, tests and the trace validator
//! install sinks programmatically with [`set_trace_path`] (the same pattern
//! as `relational::guard_cache::set_guard_cache_enabled`).
//!
//! # Record shapes
//!
//! ```text
//! {"ev":"enter","id":3,"parent":2,"thread":1,"name":"engine.expand","t_ns":81736,"fields":{"tasks":4}}
//! {"ev":"exit","id":3,"thread":1,"name":"engine.expand","dur_ns":51892}
//! {"ev":"event","thread":1,"name":"chase.report","t_ns":99121,"fields":{"passes":3}}
//! ```
//!
//! `id`s are unique per process; `parent` is `0` for root spans; `t_ns` is
//! nanoseconds since the sink was installed.  All field values are
//! non-negative integers — the `trace_check` example validates exactly this
//! grammar.

use std::cell::{Cell, RefCell};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock, RwLock};
use std::time::Instant;

use crate::json::JsonObject;
use crate::metrics;

/// The environment variable naming the JSONL trace output path.
pub const TRACE_ENV_VAR: &str = "ACCLTL_TRACE";

/// The environment variable enabling the human-readable stats summary.
pub const STATS_ENV_VAR: &str = "ACCLTL_STATS";

/// Activity bit: measure span durations and accumulate them as metrics.
const TIMING: u8 = 1;
/// Activity bit: a JSONL sink is installed; write enter/exit/event records.
const TRACING: u8 = 2;

static ACTIVE: AtomicU8 = AtomicU8::new(0);
static STATS: AtomicU8 = AtomicU8::new(0);
static INIT: Once = Once::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct Sink {
    file: Mutex<File>,
    epoch: Instant,
}

impl Sink {
    fn write_line(&self, line: &str) {
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // A full disk mid-trace should not take the search down with it;
        // drop the record and keep the verdict path untouched.
        let _ = file.write_all(line.as_bytes());
        let _ = file.write_all(b"\n");
    }
}

fn sink_slot() -> &'static RwLock<Option<&'static Sink>> {
    static SLOT: OnceLock<RwLock<Option<&'static Sink>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn init_from_env() {
    INIT.call_once(|| {
        if std::env::var(STATS_ENV_VAR).is_ok_and(|v| v == "1") {
            STATS.store(TIMING, Ordering::Relaxed);
        }
        let path = std::env::var_os(TRACE_ENV_VAR);
        match path {
            Some(path) if !path.is_empty() => install_sink(Path::new(&path)),
            _ => ACTIVE.store(STATS.load(Ordering::Relaxed), Ordering::Relaxed),
        }
    });
}

fn install_sink(path: &Path) {
    let file = OpenOptions::new().create(true).append(true).open(path);
    let slot = sink_slot();
    let mut guard = slot
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    match file {
        Ok(file) => {
            // Sinks are leaked: spans already in flight may still hold the
            // previous sink's records, and a process traces at most a
            // handful of sinks (env init plus test installs).
            let sink: &'static Sink = Box::leak(Box::new(Sink {
                file: Mutex::new(file),
                epoch: Instant::now(),
            }));
            *guard = Some(sink);
            ACTIVE.store(TIMING | TRACING, Ordering::Relaxed);
        }
        Err(_) => {
            // An unopenable trace path must not change verdicts or output:
            // fall back to the stats-only bits.
            *guard = None;
            ACTIVE.store(STATS.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

fn active() -> u8 {
    init_from_env();
    ACTIVE.load(Ordering::Relaxed)
}

/// Whether the `ACCLTL_STATS=1` summary is enabled for this process.
pub fn stats_enabled() -> bool {
    init_from_env();
    STATS.load(Ordering::Relaxed) != 0
}

/// Whether a JSONL trace sink is currently installed.  Callers may use this
/// to gate loops that emit many [`event`]s; single events need no guard.
pub fn tracing() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Relaxed) & TRACING != 0
}

/// Installs (`Some(path)`) or removes (`None`) the JSONL trace sink,
/// overriding whatever `ACCLTL_TRACE` said at process start.
///
/// The environment is read once per process, so tests and harnesses that
/// need tracing after startup use this hook — the same programmatic-override
/// pattern as `set_guard_cache_enabled`.  Do not swap sinks while spans are
/// open: their exit records would land in the new sink unmatched.
pub fn set_trace_path(path: Option<&Path>) {
    init_from_env();
    match path {
        Some(path) => install_sink(path),
        None => {
            let mut guard = sink_slot()
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *guard = None;
            ACTIVE.store(STATS.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

fn current_sink() -> Option<&'static Sink> {
    *sink_slot()
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn thread_id() -> u64 {
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != 0 {
            id
        } else {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
            id
        }
    })
}

fn render_fields(fields: &[(&str, u64)]) -> String {
    let mut object = JsonObject::new();
    for (key, value) in fields {
        object = object.num(key, *value);
    }
    object.build()
}

/// An RAII span guard; see the module docs.  When observability is fully
/// disabled this is a no-op zero-field-work guard.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    id: u64,
    name: &'static str,
    start: Instant,
    traced: bool,
}

/// Opens a span named `name`.  Equivalent to [`span_fields`] with no fields.
pub fn span(name: &'static str) -> Span {
    span_fields(name, &[])
}

/// Opens a span named `name` carrying numeric `fields` on its enter record.
///
/// Field values must be non-negative by construction (`u64`) — the trace
/// validator rejects anything else.
pub fn span_fields(name: &'static str, fields: &[(&str, u64)]) -> Span {
    let active = active();
    if active == 0 {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let traced = active & TRACING != 0;
    if traced {
        if let Some(sink) = current_sink() {
            let mut record = JsonObject::new()
                .str("ev", "enter")
                .num("id", id)
                .num("parent", parent)
                .num("thread", thread_id())
                .str("name", name)
                .num("t_ns", sink.epoch.elapsed().as_nanos() as u64);
            if !fields.is_empty() {
                record = record.raw("fields", render_fields(fields));
            }
            sink.write_line(&record.build());
        }
    }
    Span {
        inner: Some(SpanInner {
            id,
            name,
            start: Instant::now(),
            traced,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are scoped guards, so this is the top unless a caller
            // leaked one across threads; search from the end to stay safe.
            if let Some(at) = stack.iter().rposition(|&id| id == inner.id) {
                stack.remove(at);
            }
        });
        metrics::add(&format!("span.{}.ns", inner.name), dur_ns);
        metrics::add(&format!("span.{}.calls", inner.name), 1);
        if inner.traced {
            if let Some(sink) = current_sink() {
                let record = JsonObject::new()
                    .str("ev", "exit")
                    .num("id", inner.id)
                    .num("thread", thread_id())
                    .str("name", inner.name)
                    .num("dur_ns", dur_ns)
                    .build();
                sink.write_line(&record);
            }
        }
    }
}

/// Writes a point event named `name` with numeric `fields` to the trace
/// sink.  A no-op (one atomic load) unless tracing is active.
pub fn event(name: &str, fields: &[(&str, u64)]) {
    if active() & TRACING == 0 {
        return;
    }
    let Some(sink) = current_sink() else { return };
    let mut record = JsonObject::new()
        .str("ev", "event")
        .num("thread", thread_id())
        .str("name", name)
        .num("t_ns", sink.epoch.elapsed().as_nanos() as u64);
    if !fields.is_empty() {
        record = record.raw("fields", render_fields(fields));
    }
    sink.write_line(&record.build());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use std::sync::Mutex as StdMutex;

    // Trace state is process-global; serialize the tests that touch it.
    static TRACE_TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn temp_trace_path(tag: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "accltl_obs_trace_{tag}_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn disabled_spans_are_noops() {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_trace_path(None);
        if stats_enabled() {
            // An outer ACCLTL_STATS=1 keeps timing on; nothing to assert.
            return;
        }
        let before = crate::metrics::snapshot();
        {
            let _span = span("test.noop");
            event("test.noop.event", &[("n", 1)]);
        }
        let after = crate::metrics::snapshot();
        assert_eq!(
            after.counter("span.test.noop.calls"),
            before.counter("span.test.noop.calls")
        );
    }

    #[test]
    fn traced_spans_round_trip_through_the_sink() {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let path = temp_trace_path("roundtrip");
        set_trace_path(Some(&path));
        {
            let _outer = span_fields("test.outer", &[("k", 7)]);
            {
                let _inner = span("test.inner");
            }
            event("test.point", &[("v", 3)]);
        }
        set_trace_path(None);

        let contents = std::fs::read_to_string(&path).unwrap();
        let records: Vec<JsonValue> = contents
            .lines()
            .map(|line| parse(line).expect("every trace line parses"))
            .collect();
        assert_eq!(records.len(), 5, "enter/enter/exit/event/exit");

        let enters: Vec<&JsonValue> = records
            .iter()
            .filter(|r| r.get("ev").and_then(JsonValue::as_str) == Some("enter"))
            .collect();
        assert_eq!(enters.len(), 2);
        let outer_id = enters[0].get("id").unwrap().as_int().unwrap();
        assert_eq!(
            enters[0].get("fields").unwrap().get("k").unwrap().as_int(),
            Some(7)
        );
        // The inner span's parent link points at the outer span.
        assert_eq!(enters[1].get("parent").unwrap().as_int(), Some(outer_id));
        // Exits carry durations; the timing metrics accumulated too.
        assert!(records.iter().any(|r| {
            r.get("ev").and_then(JsonValue::as_str) == Some("exit")
                && r.get("dur_ns").and_then(JsonValue::as_int).is_some()
        }));
        assert!(crate::metrics::snapshot().counter("span.test.inner.calls") >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_only_reach_installed_sinks() {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        set_trace_path(None);
        assert!(!tracing());
        event("test.dropped", &[]);
        let path = temp_trace_path("events");
        set_trace_path(Some(&path));
        assert!(tracing());
        event("test.kept", &[("count", 2)]);
        set_trace_path(None);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("test.kept"));
        assert!(!contents.contains("test.dropped"));
        let _ = std::fs::remove_file(&path);
    }
}
