//! Process-wide metrics registry: named monotonic counters and gauges.
//!
//! The registry is always on — counters are plain relaxed atomics, and the
//! instrumented call sites record **aggregates** (end-of-run report totals,
//! per-round steal counts), never per-inner-loop increments, so the
//! steady-state cost is a handful of atomic adds per search run.
//!
//! Naming convention: dotted lowercase paths grouped by subsystem —
//! `engine.*`, `pool.*`, `guard_cache.*`, `index.*`, `lts.*`, `chase.*`,
//! `search.*` — plus `span.<name>.ns`/`span.<name>.calls` accumulated by
//! the [`crate::trace`] layer when timing is active.
//!
//! Reconciliation contract: the search front-ends (`logic::bounded`,
//! `automata::emptiness`) and `relational::chase` add their legacy stats
//! structs (`GuardCacheStats`, `EngineCacheStats`, `ChaseStats`) into the
//! registry exactly once per run, at report-assembly time.  Registry deltas
//! across a run therefore equal the summed report counters — the suite's
//! `obs_props` tests assert this under 1/4/8 worker threads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A named monotonic counter.  Handles are `&'static` — once registered a
/// counter lives for the process lifetime, so hot sites can cache the
/// reference (see [`LazyCounter`]) and pay one atomic add per record.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// The current counter value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named gauge: a value that can move both ways (pool sizes, cache
/// occupancy).  Stored as a `u64`; `set` overwrites, `max` keeps the
/// high-water mark.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge to `n`.
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `n` if `n` is larger than the current value.
    pub fn max(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// The current gauge value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The counter registered under `name`, creating it (at zero) on first use.
///
/// The returned handle is `'static`: the counter is leaked into the
/// registry and lives for the process lifetime.  Cold sites can call
/// [`add`] directly; hot sites should hold the handle (or a
/// [`LazyCounter`]) to skip the registry lock on every record.
pub fn counter(name: &str) -> &'static Counter {
    let mut counters = lock(&registry().counters);
    if let Some(existing) = counters.get(name) {
        return existing;
    }
    let handle: &'static Counter = Box::leak(Box::new(Counter {
        value: AtomicU64::new(0),
    }));
    counters.insert(name.to_owned(), handle);
    handle
}

/// The gauge registered under `name`, creating it (at zero) on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut gauges = lock(&registry().gauges);
    if let Some(existing) = gauges.get(name) {
        return existing;
    }
    let handle: &'static Gauge = Box::leak(Box::new(Gauge {
        value: AtomicU64::new(0),
    }));
    gauges.insert(name.to_owned(), handle);
    handle
}

/// Adds `n` to the counter registered under `name` (registering it first if
/// needed).  Convenience for cold, coarse-grained sites — one registry lock
/// per call.
pub fn add(name: &str, n: u64) {
    counter(name).add(n);
}

/// A counter reference resolved lazily on first use and cached forever —
/// the hot-site recording primitive.  Declaring
/// `static STEALS: LazyCounter = LazyCounter::new("pool.steals");` makes
/// each `STEALS.add(n)` one `OnceLock` load plus one relaxed atomic add.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A lazy handle to the counter registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` to the underlying counter.
    pub fn add(&self, n: u64) {
        self.cell.get_or_init(|| counter(self.name)).add(n);
    }

    /// The current value of the underlying counter.
    pub fn get(&self) -> u64 {
        self.cell.get_or_init(|| counter(self.name)).get()
    }
}

impl std::fmt::Debug for LazyCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyCounter")
            .field("name", &self.name)
            .finish()
    }
}

/// A point-in-time copy of every registered counter and gauge, keyed by
/// name.  Snapshots are cheap (one lock, one pass) and are how tests
/// compute registry deltas and how [`crate::summary`] renders the
/// `ACCLTL_STATS=1` report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values at snapshot time, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at snapshot time, sorted by name.
    pub gauges: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// The counter value under `name`, or zero if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Per-counter difference `self - earlier`, saturating at zero (counters
    /// are monotonic, so saturation only triggers on mismatched snapshots).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| {
                let before = earlier.counter(name);
                (name.clone(), value.saturating_sub(before))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
        }
    }
}

/// Captures the current value of every registered counter and gauge.
pub fn snapshot() -> MetricsSnapshot {
    let counters = lock(&registry().counters)
        .iter()
        .map(|(name, counter)| (name.clone(), counter.get()))
        .collect();
    let gauges = lock(&registry().gauges)
        .iter()
        .map(|(name, gauge)| (name.clone(), gauge.get()))
        .collect();
    MetricsSnapshot { counters, gauges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter("test.metrics.alpha");
        let before = c.get();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), before + 4);
        assert_eq!(snapshot().counter("test.metrics.alpha"), before + 4);
    }

    #[test]
    fn counter_handles_are_stable() {
        let a = counter("test.metrics.stable") as *const Counter;
        let b = counter("test.metrics.stable") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_counter_reaches_the_registry() {
        static LAZY: LazyCounter = LazyCounter::new("test.metrics.lazy");
        let before = counter("test.metrics.lazy").get();
        LAZY.add(7);
        assert_eq!(counter("test.metrics.lazy").get(), before + 7);
    }

    #[test]
    fn gauges_set_and_max() {
        let g = gauge("test.metrics.gauge");
        g.set(5);
        g.max(3);
        assert_eq!(g.get(), 5);
        g.max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let c = counter("test.metrics.delta");
        let before = snapshot();
        c.add(11);
        let after = snapshot();
        assert_eq!(after.delta(&before).counter("test.metrics.delta"), 11);
    }
}
